"""The RIPE Atlas connection-logs dataset (Section 3.1 of the paper).

:class:`ConnectionLog` stores per-probe sequences of
:class:`~repro.atlas.types.ConnectionLogEntry` in time order, serializes to
a tab-separated text format, and renders samples in the paper's Table 1
style.  Address changes are *detected* from these logs by
:mod:`repro.core.changes`; this module only stores and transports them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.atlas.types import ConnectionLogEntry
from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address
from repro.util import timeutil
from repro.util.ingest import (
    IngestReport,
    ReadPolicy,
    format_line_error,
)

#: Dataset label used in ingest accounting and diagnostics.
DATASET_NAME = "connlog"


class ConnectionLog:
    """Per-probe, time-ordered connection log entries."""

    def __init__(self, entries: Iterable[ConnectionLogEntry] = ()) -> None:
        self._by_probe: dict[int, list[ConnectionLogEntry]] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: ConnectionLogEntry) -> None:
        """Append an entry; rejects overlaps/out-of-order per probe."""
        log = self._by_probe.setdefault(entry.probe_id, [])
        if log and entry.start < log[-1].end:
            raise DatasetError(
                "probe %d: connection starting %s overlaps previous one"
                % (entry.probe_id, entry.start)
            )
        log.append(entry)

    def probe_ids(self) -> list[int]:
        """All probe ids present, sorted."""
        return sorted(self._by_probe)

    def entries(self, probe_id: int) -> list[ConnectionLogEntry]:
        """Entries for one probe in time order (empty when unknown)."""
        return list(self._by_probe.get(probe_id, ()))

    def entry_count(self) -> int:
        """Total entries across all probes."""
        return sum(len(log) for log in self._by_probe.values())

    def total_connected_time(self, probe_id: int) -> float:
        """Aggregate connected duration for a probe.

        The paper restricts analysis to probes connected for more than
        30 days in 2015; this is the quantity that threshold applies to.
        """
        return sum(e.duration for e in self._by_probe.get(probe_id, ()))

    def __iter__(self) -> Iterator[ConnectionLogEntry]:
        for probe_id in self.probe_ids():
            yield from self._by_probe[probe_id]

    # -- serialization -----------------------------------------------------

    def write(self, stream: TextIO) -> None:
        """Serialize as ``probe_id<TAB>start<TAB>end<TAB>address`` lines."""
        for entry in self:
            address = (entry.ipv6_address if entry.is_ipv6
                       else str(entry.address))
            stream.write("%d\t%.0f\t%.0f\t%s\n"
                         % (entry.probe_id, entry.start, entry.end, address))

    @staticmethod
    def _parse_line(text: str) -> ConnectionLogEntry:
        """Parse one record line; raises :class:`ParseError` sans location."""
        fields = text.split("\t")
        if len(fields) != 4:
            raise ParseError("expected 4 fields, got %d" % len(fields))
        probe_text, start_text, end_text, address_text = fields
        try:
            probe_id = int(probe_text)
            start = float(start_text)
            end = float(end_text)
        except ValueError:
            raise ParseError("malformed numbers") from None
        if ":" in address_text:
            return ConnectionLogEntry(probe_id, start, end, None,
                                      ipv6_address=address_text)
        return ConnectionLogEntry(
            probe_id, start, end, IPv4Address.parse(address_text))

    @classmethod
    def read(cls, stream: TextIO,
             policy: ReadPolicy = ReadPolicy.STRICT,
             report: IngestReport | None = None,
             source: str | None = None) -> "ConnectionLog":
        """Parse the text format produced by :meth:`write`.

        ``STRICT`` raises on the first malformed/out-of-order record;
        ``REPAIR`` quarantines malformed lines, re-sorts out-of-order
        entries per probe and quarantines overlapping duplicates,
        accounting every decision in ``report``.
        """
        source = source or getattr(stream, "name", "<connlog>")
        report = report if report is not None else IngestReport()
        rows: list[tuple[int, ConnectionLogEntry]] = []
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                rows.append((line_number, cls._parse_line(text)))
            except ParseError as error:
                if policy is ReadPolicy.STRICT:
                    raise ParseError(
                        format_line_error(source, line_number, error)
                    ) from None
                report.quarantined(DATASET_NAME, source, line_number,
                                   str(error))
        if policy is ReadPolicy.STRICT:
            log = cls()
            for line_number, entry in rows:
                try:
                    log.add(entry)
                except DatasetError as error:
                    raise DatasetError(
                        format_line_error(source, line_number, error)
                    ) from None
                report.parsed(DATASET_NAME)
            return log
        return cls._assemble_repaired(rows, report, source)

    @classmethod
    def _assemble_repaired(cls, rows: list[tuple[int, ConnectionLogEntry]],
                           report: IngestReport,
                           source: str) -> "ConnectionLog":
        """REPAIR assembly: sort per probe, drop overlapping records."""
        by_probe: dict[int, list[tuple[int, ConnectionLogEntry]]] = {}
        for line_number, entry in rows:
            by_probe.setdefault(entry.probe_id, []).append((line_number,
                                                            entry))
        log = cls()
        for probe_id in sorted(by_probe):
            items = by_probe[probe_id]
            ordered = sorted(items, key=lambda item: (item[1].start,
                                                      item[1].end))
            # A record is displaced when sorting moved it; compare the
            # original file order with the sorted order positionally.
            displaced = {ordered[i][0] for i in range(len(items))
                         if ordered[i][0] != items[i][0]}
            last_end = float("-inf")
            for line_number, entry in ordered:
                if entry.start < last_end:
                    report.quarantined(
                        DATASET_NAME, source, line_number,
                        "probe %d: connection starting %s overlaps the "
                        "previous one" % (probe_id, entry.start))
                    continue
                log.add(entry)
                last_end = entry.end
                if line_number in displaced:
                    report.repaired(
                        DATASET_NAME, source, line_number,
                        "probe %d: out-of-order entry re-sorted" % probe_id)
                else:
                    report.parsed(DATASET_NAME)
        return log

    # -- presentation ------------------------------------------------------

    def render_paper_style(self, probe_id: int, limit: int | None = None) -> str:
        """Render a probe's log like the paper's Table 1.

        Columns: probe id, start time, end time, address.
        """
        lines = ["ID\tStart time\tEnd time\tIP Address"]
        entries = self._by_probe.get(probe_id, [])
        if limit is not None:
            entries = entries[:limit]
        for entry in entries:
            address = (entry.ipv6_address if entry.is_ipv6
                       else str(entry.address))
            lines.append("%d\t%s\t%s\t%s" % (
                entry.probe_id,
                timeutil.format_log_time(entry.start),
                timeutil.format_log_time(entry.end),
                address,
            ))
        return "\n".join(lines)
