"""Probe archive: metadata registry plus country/continent geography.

The paper resolves each probe's country through the RIPE Atlas probe
database and aggregates to continents for Figure 1.  We keep the same
two-step structure: probes carry an ISO country code, and
:data:`COUNTRY_TO_CONTINENT` maps the countries appearing in our scenarios
onto the two-letter continent codes the paper's legend uses
(EU, NA, AS, AF, SA, OC).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.atlas.types import ProbeMeta, ProbeVersion
from repro.errors import DatasetError

#: ISO 3166 alpha-2 country -> continent code used by the paper's Figure 1.
COUNTRY_TO_CONTINENT: dict[str, str] = {
    # Europe
    "DE": "EU", "FR": "EU", "GB": "EU", "NL": "EU", "IT": "EU", "BE": "EU",
    "AT": "EU", "HR": "EU", "PL": "EU", "HU": "EU", "RU": "EU", "ES": "EU",
    "SE": "EU", "CH": "EU", "CZ": "EU", "PT": "EU", "GR": "EU", "IE": "EU",
    "NO": "EU", "FI": "EU", "DK": "EU", "UA": "EU", "RO": "EU",
    # North America
    "US": "NA", "CA": "NA", "MX": "NA",
    # Asia
    "JP": "AS", "IN": "AS", "CN": "AS", "KZ": "AS", "SG": "AS", "KR": "AS",
    "ID": "AS", "TR": "AS", "IL": "AS", "TH": "AS",
    # Africa
    "ZA": "AF", "KE": "AF", "EG": "AF", "MU": "AF", "SN": "AF", "NG": "AF",
    # South America
    "BR": "SA", "AR": "SA", "CL": "SA", "UY": "SA", "CO": "SA", "PE": "SA",
    # Oceania
    "AU": "OC", "NZ": "OC",
}

CONTINENTS = ("EU", "NA", "AS", "AF", "SA", "OC")


def continent_of(country: str) -> str:
    """Return the continent code for a country; raises when unknown."""
    try:
        return COUNTRY_TO_CONTINENT[country]
    except KeyError:
        raise DatasetError("no continent mapping for country %r" % country) from None


class ProbeArchive:
    """Registry of probe metadata, the analogue of the RIPE probe archive."""

    def __init__(self, probes: Iterable[ProbeMeta] = ()) -> None:
        self._probes: dict[int, ProbeMeta] = {}
        for meta in probes:
            self.add(meta)

    def __len__(self) -> int:
        return len(self._probes)

    def __iter__(self) -> Iterator[ProbeMeta]:
        for probe_id in sorted(self._probes):
            yield self._probes[probe_id]

    def add(self, meta: ProbeMeta) -> None:
        """Register a probe; duplicate ids are rejected."""
        if meta.probe_id in self._probes:
            raise DatasetError("probe %d already registered" % meta.probe_id)
        if meta.continent not in CONTINENTS:
            raise DatasetError("unknown continent %r" % meta.continent)
        # The archive is populated while the bundle loads, strictly
        # before any server thread is spawned; it is read-only from then
        # on, so the build-time writes never overlap the handler reads.
        self._probes[meta.probe_id] = meta  # repro: noqa[RPR011] -- archive is frozen after dataset load, before the coordinator accepts connections

    def get(self, probe_id: int) -> ProbeMeta:
        """Return a probe's metadata; raises when absent."""
        try:
            return self._probes[probe_id]
        except KeyError:
            raise DatasetError("probe %d not in archive" % probe_id) from None

    def has_probe(self, probe_id: int) -> bool:
        """True when the probe is registered."""
        return probe_id in self._probes

    def probe_ids(self) -> list[int]:
        """All probe ids, sorted."""
        return sorted(self._probes)

    def count_by_country(self) -> Counter:
        """Probe counts keyed by country code."""
        return Counter(meta.country for meta in self._probes.values())

    def count_by_continent(self) -> Counter:
        """Probe counts keyed by continent code."""
        return Counter(meta.continent for meta in self._probes.values())

    def count_by_version(self) -> Counter:
        """Probe counts keyed by hardware version."""
        return Counter(meta.version for meta in self._probes.values())

    def probes_with_version(self, version: ProbeVersion) -> list[int]:
        """Probe ids running the given hardware version."""
        return sorted(pid for pid, meta in self._probes.items()
                      if meta.version is version)
