"""RIPE Atlas substrate: dataset record types, containers, probe archive."""

from repro.atlas.archive import (
    CONTINENTS,
    COUNTRY_TO_CONTINENT,
    ProbeArchive,
    continent_of,
)
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import (
    DEFAULT_CADENCE,
    HEALTHY_LTS,
    KRootDataset,
    KRootSeries,
)
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import (
    FILTERED_TAGS,
    ConnectionLogEntry,
    KRootPingRecord,
    ProbeMeta,
    ProbeVersion,
    UptimeRecord,
)

__all__ = [
    "CONTINENTS",
    "COUNTRY_TO_CONTINENT",
    "ConnectionLog",
    "ConnectionLogEntry",
    "DEFAULT_CADENCE",
    "FILTERED_TAGS",
    "HEALTHY_LTS",
    "KRootDataset",
    "KRootPingRecord",
    "KRootSeries",
    "ProbeArchive",
    "ProbeMeta",
    "ProbeVersion",
    "UptimeDataset",
    "UptimeRecord",
    "continent_of",
]
