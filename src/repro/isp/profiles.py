"""ISP profiles mirroring the autonomous systems the paper reports on.

Each profile pairs an :class:`~repro.isp.spec.IspSpec` with a recommended
probe deployment size.  Parameters are reverse-engineered from the paper's
evaluation:

* Table 5 fixes each periodic ISP's period ``d``, the fraction of probes
  that are periodic, and (via MAX <= d and the harmonic column) the skip
  and off-schedule probabilities;
* Table 6 and Figures 7-9 fix the outage-renumbering behaviour (PPP ISPs
  renumber on any outage, DHCP ISPs only after lease loss);
* Table 7 fixes the pool locality (``stay_bgp``) and prefix geometry
  (prefixes wider than a /16 let 'Diff /16' exceed 'Diff BGP', as for BT).

Deployment counts approximate the paper's per-AS probe counts; they are the
*changed-probe* N of Table 5 inflated by the share of probes that never see
a change.  Filler ISPs populate continents so Figure 1's geography has the
same qualitative modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isp.pool import PoolPolicy
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.util.timeutil import DAY, HOUR

_DHCP = AccessTechnology.DHCP
_PPP = AccessTechnology.PPP


@dataclass(frozen=True)
class IspProfile:
    """An ISP spec plus the probe deployment the paper scenario gives it."""

    spec: IspSpec
    probes: int

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError("profile needs at least one probe")


def _plan(num: int, length: int = 20, per16: int = 2,
          per8: int = 1) -> AddressSpacePlan:
    return AddressSpacePlan(num_prefixes=num, prefix_length=length,
                            slash16_groups=per16, slash8_groups=per8)


def _ppp_periodic(name: str, asn: int, country: str, period_hours: float,
                  probes: int, **overrides) -> IspProfile:
    """A PPP ISP with a Radius session limit (Table 5 family)."""
    defaults = dict(
        plan=_plan(8, per16=4, per8=2),
        pool_policy=PoolPolicy(stay_bgp_prob=0.4, stay_slash16_prob=0.6),
        periodic_fraction=0.9,
        skip_prob=0.002,
        offschedule_prob=0.0003,
        holds_state_fraction=0.1,
        hold_threshold_median=2 * DAY,
    )
    defaults.update(overrides)
    spec = IspSpec(name=name, asn=asn, country=country, access=_PPP,
                   period=period_hours * HOUR, **defaults)
    return IspProfile(spec, probes)


def _dhcp_stable(name: str, asn: int, country: str, probes: int,
                 **overrides) -> IspProfile:
    """A DHCP ISP with RFC 2131 preservation (LGI/Verizon family)."""
    defaults = dict(
        plan=_plan(6, per16=3, per8=2),
        pool_policy=PoolPolicy(stay_bgp_prob=0.5, stay_slash16_prob=0.7),
        lease_duration=4 * HOUR,
        churn_rate_per_hour=0.02,
        dhcp_change_prob=0.01,
    )
    defaults.update(overrides)
    spec = IspSpec(name=name, asn=asn, country=country, access=_DHCP,
                   **defaults)
    return IspProfile(spec, probes)


def _ppp_reactive(name: str, asn: int, country: str, probes: int,
                  **overrides) -> IspProfile:
    """A PPP ISP without periodic limits: renumbers on outages only."""
    defaults = dict(
        plan=_plan(8, per16=4, per8=2),
        pool_policy=PoolPolicy(stay_bgp_prob=0.3, stay_slash16_prob=0.5),
        holds_state_fraction=0.15,
        hold_threshold_median=2 * DAY,
    )
    defaults.update(overrides)
    spec = IspSpec(name=name, asn=asn, country=country, access=_PPP,
                   period=None, **defaults)
    return IspProfile(spec, probes)


def paper_profiles() -> list[IspProfile]:
    """All named ISPs from the paper's Tables 5-7 and Figures 2-3, 7-9."""
    return [
        # --- Table 5: periodic renumberers -------------------------------
        _ppp_periodic(
            "Orange", 3215, "FR", 168, probes=130,
            plan=_plan(12, length=20, per16=6, per8=3),
            pool_policy=PoolPolicy(stay_bgp_prob=0.32, stay_slash16_prob=0.6),
            periodic_fraction=0.91, skip_prob=0.0004,
            offschedule_prob=0.0002, holds_state_fraction=0.12,
        ),
        _ppp_periodic(
            "DTAG", 3320, "DE", 24, probes=70,
            plan=_plan(4, length=14, per16=4, per8=4),
            pool_policy=PoolPolicy(stay_bgp_prob=0.76, stay_slash16_prob=0.95),
            periodic_fraction=0.82, sync_window=(0, 6), sync_fraction=0.75,
            skip_prob=0.0007, offschedule_prob=0.00006,
            holds_state_fraction=0.08,
        ),
        _ppp_periodic(
            "Telefonica DE 2", 6805, "DE", 24, probes=18,
            periodic_fraction=0.88, sync_window=(0, 6), sync_fraction=0.5,
            skip_prob=0.004, pool_policy=PoolPolicy(0.5, 0.8),
        ),
        _ppp_periodic(
            "Telefonica DE 1", 13184, "DE", 24, probes=15,
            periodic_fraction=0.95, sync_window=(0, 6), sync_fraction=0.5,
            skip_prob=0.005, pool_policy=PoolPolicy(0.5, 0.8),
        ),
        _ppp_periodic(
            "PJSC Rostelecom", 8997, "RU", 24, probes=24,
            periodic_fraction=0.6, skip_prob=0.005,
        ),
        _ppp_periodic(
            "BT", 2856, "GB", 337, probes=72,
            plan=_plan(6, length=13, per16=6, per8=6),
            pool_policy=PoolPolicy(stay_bgp_prob=0.56, stay_slash16_prob=0.57),
            periodic_fraction=0.2, skip_prob=0.01, offschedule_prob=0.02,
            holds_state_fraction=0.1,
            network_outages_per_year=25.0, power_outages_per_year=12.0,
        ),
        _ppp_periodic(
            "Proximus", 5432, "BE", 36, probes=44,
            periodic_fraction=0.4, alt_period=24 * HOUR,
            alt_period_fraction=0.25, skip_prob=0.02, offschedule_prob=0.01,
            network_outages_per_year=20.0,
        ),
        _ppp_periodic(
            "A1 Telekom", 8447, "AT", 24, probes=13,
            periodic_fraction=0.93, skip_prob=0.001,
        ),
        _ppp_periodic(
            "Vodafone GmbH", 3209, "DE", 24, probes=23,
            periodic_fraction=0.45, sync_window=(0, 6), sync_fraction=0.4,
            skip_prob=0.01, offschedule_prob=0.004,
        ),
        _ppp_periodic("Hrvatski", 5391, "HR", 24, probes=8,
                      periodic_fraction=0.97, skip_prob=0.003),
        _ppp_periodic("ISKON", 13046, "HR", 24, probes=7,
                      periodic_fraction=0.95, skip_prob=0.004,
                      holds_state_fraction=0.03),
        _ppp_periodic("ANTEL", 6057, "UY", 12, probes=7,
                      periodic_fraction=0.95, skip_prob=0.002),
        _ppp_periodic(
            "Global Village Telecom", 18881, "BR", 48, probes=7,
            periodic_fraction=0.95, skip_prob=0.002, offschedule_prob=0.03,
        ),
        _ppp_periodic("Mauritius Telecom", 23889, "MU", 24, probes=7,
                      periodic_fraction=0.85, skip_prob=0.01),
        _ppp_periodic("JSC Kazakhtelecom", 9198, "KZ", 24, probes=16,
                      periodic_fraction=0.35, skip_prob=0.004),
        _ppp_periodic(
            "Orange Polska", 5617, "PL", 22, probes=11,
            periodic_fraction=0.92, alt_period=24 * HOUR,
            alt_period_fraction=0.45, skip_prob=0.001,
        ),
        _ppp_periodic("VIPnet", 31012, "HR", 92, probes=8,
                      periodic_fraction=0.6, skip_prob=0.01),
        _ppp_periodic("Digi Tavkozlesi", 20845, "HU", 168, probes=5,
                      periodic_fraction=0.95, skip_prob=0.005),
        _ppp_periodic("Free SAS", 12322, "FR", 24, probes=13,
                      periodic_fraction=0.27, skip_prob=0.01),
        _ppp_periodic("SONATEL-AS", 8346, "SN", 24, probes=8,
                      periodic_fraction=0.45, skip_prob=0.02,
                      offschedule_prob=0.02),
        _ppp_periodic("Net by Net", 12714, "RU", 47, probes=8,
                      periodic_fraction=0.45, skip_prob=0.003),

        # --- Table 6 / Figure 9: reactive PPP ISPs ------------------------
        _ppp_reactive(
            "Telecom Italia", 3269, "IT", probes=32,
            pool_policy=PoolPolicy(stay_bgp_prob=0.13, stay_slash16_prob=0.4),
            network_outages_per_year=25.0, power_outages_per_year=12.0,
        ),
        _ppp_reactive("Wind Telecomunicazioni", 1267, "IT", probes=14,
                      network_outages_per_year=22.0),
        _ppp_reactive(
            "SFR", 15557, "FR", probes=18,
            holds_state_fraction=0.5, hold_threshold_median=12 * HOUR,
            network_outages_per_year=20.0,
        ),

        # --- non-periodic DHCP ISPs (Figures 2, 7-9, Table 7) ------------
        _dhcp_stable(
            "LGI", 6830, "NL", probes=100,
            pool_policy=PoolPolicy(stay_bgp_prob=0.45, stay_slash16_prob=0.6),
            lease_duration=6 * HOUR, churn_rate_per_hour=0.03,
            dhcp_change_prob=0.03,
            network_outages_per_year=22.0, power_outages_per_year=10.0,
        ),
        _dhcp_stable(
            "Verizon", 701, "US", probes=75,
            pool_policy=PoolPolicy(stay_bgp_prob=0.77, stay_slash16_prob=0.9),
            lease_duration=12 * HOUR, churn_rate_per_hour=0.004,
            dhcp_change_prob=0.05,
        ),
        _dhcp_stable(
            "Comcast", 7922, "US", probes=45,
            pool_policy=PoolPolicy(stay_bgp_prob=0.63, stay_slash16_prob=0.85),
            lease_duration=12 * HOUR, churn_rate_per_hour=0.005,
            dhcp_change_prob=0.05,
        ),
        _dhcp_stable(
            "Kabel Deutschland", 31334, "DE", probes=30,
            lease_duration=12 * HOUR, churn_rate_per_hour=0.003,
            dhcp_change_prob=0.04,
        ),
        _dhcp_stable(
            "Kabel BW", 29562, "DE", probes=10,
            lease_duration=12 * HOUR, churn_rate_per_hour=0.003,
            dhcp_change_prob=0.04,
        ),
        _dhcp_stable(
            "Ziggo", 9143, "NL", probes=25,
            pool_policy=PoolPolicy(stay_bgp_prob=0.65, stay_slash16_prob=0.7),
            churn_rate_per_hour=0.004, dhcp_change_prob=0.02,
        ),
        _dhcp_stable(
            "Virgin Media", 5089, "GB", probes=25,
            pool_policy=PoolPolicy(stay_bgp_prob=0.16, stay_slash16_prob=0.3),
            plan=_plan(10, per16=5, per8=4),
            churn_rate_per_hour=0.006, dhcp_change_prob=0.006,
        ),
    ]


def filler_profiles() -> list[IspProfile]:
    """Small ISPs that give Figure 1 its per-continent shape.

    Europe gains extra 24 h and 1-week renumberers; Asia and Africa carry
    24 h modes; South America shows the paper's 12 h / 28 h / 48 h / 8-day
    mixture; North America and Oceania stay mode-free with long durations.
    ASNs here are synthetic (64500+).
    """
    profiles = [
        # Europe
        _ppp_periodic("EU-DSL-1", 64500, "ES", 24, probes=12,
                      periodic_fraction=0.7),
        _ppp_periodic("EU-DSL-2", 64501, "CZ", 168, probes=10,
                      periodic_fraction=0.8),
        _dhcp_stable("EU-Cable-1", 64502, "SE", probes=18),
        _dhcp_stable("EU-Cable-2", 64503, "CH", probes=16,
                     churn_rate_per_hour=0.004, dhcp_change_prob=0.004),
        _ppp_reactive("EU-DSL-3", 64504, "PT", probes=10),
        # One administrative renumbering event all year (Section 8 reports
        # exactly one such instance): this cable ISP migrates every
        # customer to a reserve prefix in late July.
        _dhcp_stable("EU-Renum-Cable", 64505, "RO", probes=12,
                     plan=_plan(4, per16=2, per8=2),
                     churn_rate_per_hour=0.004, dhcp_change_prob=0.03,
                     admin_renumber_day=206),
        # North America: long-lived, mode-free (durations of many weeks)
        _dhcp_stable("NA-Cable-1", 64510, "US", probes=40,
                     lease_duration=24 * HOUR, churn_rate_per_hour=0.002,
                     dhcp_change_prob=0.06),
        _dhcp_stable("NA-Cable-2", 64511, "CA", probes=25,
                     lease_duration=24 * HOUR, churn_rate_per_hour=0.002,
                     dhcp_change_prob=0.06),
        _dhcp_stable("NA-DSL-1", 64512, "MX", probes=10,
                     churn_rate_per_hour=0.008, dhcp_change_prob=0.08),
        # Asia: mixed, visible 24 h mode
        _ppp_periodic("AS-DSL-1", 64520, "JP", 24, probes=14,
                      periodic_fraction=0.5),
        _ppp_periodic("AS-DSL-2", 64521, "IN", 24, probes=10,
                      periodic_fraction=0.6, network_outages_per_year=30.0),
        _dhcp_stable("AS-Cable-1", 64522, "SG", probes=12),
        _dhcp_stable("AS-Cable-2", 64523, "KR", probes=12,
                     churn_rate_per_hour=0.005),
        # Africa: strong 24 h mode
        _ppp_periodic("AF-DSL-1", 64530, "ZA", 24, probes=10,
                      periodic_fraction=0.8, network_outages_per_year=25.0),
        _ppp_periodic("AF-DSL-2", 64531, "KE", 24, probes=7,
                      periodic_fraction=0.7, network_outages_per_year=30.0),
        _dhcp_stable("AF-Cable-1", 64532, "EG", probes=6,
                     churn_rate_per_hour=0.03, dhcp_change_prob=0.02),
        # South America: 12 h / 28 h / 48 h / 8-day modes
        _ppp_periodic("SA-DSL-1", 64540, "BR", 12, probes=9,
                      periodic_fraction=0.8),
        _ppp_periodic("SA-DSL-2", 64541, "AR", 28, probes=8,
                      periodic_fraction=0.8),
        _ppp_periodic("SA-DSL-3", 64542, "CL", 192, probes=7,
                      periodic_fraction=0.8),
        _dhcp_stable("SA-Cable-1", 64543, "CO", probes=8,
                     churn_rate_per_hour=0.02),
        # Oceania: mode-free, long-lived
        _dhcp_stable("OC-DSL-1", 64550, "AU", probes=18,
                     lease_duration=24 * HOUR, churn_rate_per_hour=0.003,
                     dhcp_change_prob=0.06),
        _dhcp_stable("OC-Cable-1", 64551, "NZ", probes=10,
                     lease_duration=24 * HOUR, churn_rate_per_hour=0.003,
                     dhcp_change_prob=0.06),
    ]
    return profiles


def all_profiles() -> list[IspProfile]:
    """Named paper ISPs plus geography fillers; ASNs are unique."""
    profiles = paper_profiles() + filler_profiles()
    seen: set[int] = set()
    for profile in profiles:
        if profile.spec.asn in seen:
            raise ValueError("duplicate ASN %d" % profile.spec.asn)
        seen.add(profile.spec.asn)
    return profiles


def profile_by_name(name: str) -> IspProfile:
    """Look up a profile by its ISP name; raises KeyError when absent."""
    for profile in all_profiles():
        if profile.spec.name == name:
            return profile
    raise KeyError(name)
