"""ISP-side address assignment plants.

A *plant* wires an :class:`~repro.isp.spec.IspSpec` to concrete protocol
machinery and answers the three questions the simulator asks about a CPE:

1. ``connect`` — what address does a newly attached CPE get?
2. ``scheduled_cut`` — when will the ISP cut the current session on purpose
   (the paper's periodic renumbering), if ever?
3. ``reconnect`` — after an outage, does the CPE come back with the same
   address or a new one?

:class:`DhcpPlant` preserves bindings per RFC 2131 and only renumbers when
an outage outlives the lease and the pool has churned (Figure 9, LGI).
:class:`PppPlant` allocates fresh addresses on every session establishment
(Figure 9, Orange) and enforces the Radius session timeout, with per-CPE
behaviour — sync-window reconnects, skipped cuts, state-holding CPEs —
drawn deterministically from the scenario seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dhcp.server import DhcpServer
from repro.errors import SimulationError
from repro.isp.pool import AddressPool
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.ipv4 import IPv4Address
from repro.ppp.radius import RadiusServer
from repro.ppp.session import PppoeConcentrator
from repro.util.rng import lognormal_from_median, substream
from repro.util.timeutil import DAY, HOUR

#: Shortest session a sync-capable CPE will tolerate before its scheduled
#: reconnect; prevents pathological seconds-long sessions.
MIN_SYNC_SESSION = HOUR


@dataclass(frozen=True)
class CpeBehavior:
    """Per-CPE behavioural traits drawn once from the scenario seed."""

    periodic: bool
    #: The session-length limit applying to this CPE (may be the spec's
    #: ``alt_period``), or None when the CPE is not periodic.
    period: float | None
    #: Second-of-day (GMT) at which the CPE reconnects, or None free-running.
    sync_second: float | None
    #: True when the CPE's PPP session survives short network drops.
    holds_state: bool
    #: Network-outage length (s) beyond which a state-holder gives up.
    hold_threshold: float


@dataclass(frozen=True)
class ReconnectOutcome:
    """Result of a CPE re-attaching after an outage."""

    address: IPv4Address
    changed: bool


class _BasePlant:
    """Shared wiring for both plant kinds."""

    def __init__(self, spec: IspSpec, pool: AddressPool, seed: int) -> None:
        self.spec = spec
        self.pool = pool
        self._behavior_cache: dict[str, CpeBehavior] = {}
        self._seed = seed
        self._rng = substream(seed, "isp", spec.asn, "plant")

    def behavior(self, cpe_id: str) -> CpeBehavior:
        """Return (drawing on first use) the CPE's behavioural traits."""
        cached = self._behavior_cache.get(cpe_id)
        if cached is not None:
            return cached
        rng = substream(self._seed, "isp", self.spec.asn, "cpe", cpe_id)
        periodic = (self.spec.is_periodic
                    and rng.random() < self.spec.periodic_fraction)
        period: float | None = None
        if periodic:
            period = self.spec.period
            if (self.spec.alt_period is not None
                    and rng.random() < self.spec.alt_period_fraction):
                period = self.spec.alt_period
        sync_second = None
        if (period is not None and self.spec.sync_window is not None
                and period % DAY == 0
                and rng.random() < self.spec.sync_fraction):
            start_h, end_h = self.spec.sync_window
            sync_second = rng.uniform(start_h * HOUR, end_h * HOUR)
        holds = rng.random() < self.spec.holds_state_fraction
        threshold = lognormal_from_median(
            rng, self.spec.hold_threshold_median,
            self.spec.hold_threshold_sigma)
        behavior = CpeBehavior(periodic, period, sync_second, holds, threshold)
        self._behavior_cache[cpe_id] = behavior
        return behavior

    # Subclass interface ---------------------------------------------------

    def connect(self, cpe_id: str, now: float) -> IPv4Address:
        raise NotImplementedError

    def scheduled_cut(self, cpe_id: str, session_start: float) -> float | None:
        raise NotImplementedError

    def periodic_cut(self, cpe_id: str, now: float) -> None:
        raise NotImplementedError

    def reconnect(self, cpe_id: str, went_down_at: float, now: float,
                  lost_power: bool) -> ReconnectOutcome:
        raise NotImplementedError

    def admin_renumber(self, cpe_id: str, now: float) -> IPv4Address:
        raise NotImplementedError


class DhcpPlant(_BasePlant):
    """DHCP access: binding preservation, outage-driven renumbering only."""

    def __init__(self, spec: IspSpec, pool: AddressPool, seed: int) -> None:
        if spec.access is not AccessTechnology.DHCP:
            raise SimulationError("DhcpPlant requires a DHCP spec")
        super().__init__(spec, pool, seed)
        self.server = DhcpServer(
            pool, spec.lease_duration,
            substream(seed, "isp", spec.asn, "dhcp"),
            churn_rate_per_hour=spec.churn_rate_per_hour,
        )

    def connect(self, cpe_id: str, now: float) -> IPv4Address:
        """Attach a CPE; RFC 2131 preservation applies across reboots."""
        return self.server.request(cpe_id, now).address

    def scheduled_cut(self, cpe_id: str, session_start: float) -> float | None:
        """DHCP deployments in our scenarios never cut on a schedule."""
        return None

    def periodic_cut(self, cpe_id: str, now: float) -> None:
        raise SimulationError("DHCP plant has no periodic cuts")

    def reconnect(self, cpe_id: str, went_down_at: float, now: float,
                  lost_power: bool) -> ReconnectOutcome:
        """Reconnect after an outage; see DhcpServer for the lease logic."""
        result = self.server.reconnect_after_outage(cpe_id, went_down_at, now)
        if not result.address_changed and (
                self._rng.random() < self.spec.dhcp_change_prob):
            lease = self.server.renumber(cpe_id, now)
            return ReconnectOutcome(lease.address, True)
        return ReconnectOutcome(result.lease.address, result.address_changed)

    def admin_renumber(self, cpe_id: str, now: float) -> IPv4Address:
        """Server reconfiguration forces the client onto a new subnet."""
        return self.server.renumber(cpe_id, now).address


class PppPlant(_BasePlant):
    """PPPoE access: fresh address per session, Radius session limits."""

    def __init__(self, spec: IspSpec, pool: AddressPool, seed: int) -> None:
        if spec.access is not AccessTechnology.PPP:
            raise SimulationError("PppPlant requires a PPP spec")
        super().__init__(spec, pool, seed)
        self.radius = RadiusServer(session_timeout=spec.period)
        self.concentrator = PppoeConcentrator(
            pool, self.radius, substream(seed, "isp", spec.asn, "ppp"))

    def connect(self, cpe_id: str, now: float) -> IPv4Address:
        """Bring up a session; the address is always a fresh allocation."""
        if self.concentrator.active_session(cpe_id) is not None:
            raise SimulationError("CPE %r already has a session" % cpe_id)
        return self.concentrator.connect(cpe_id, now).address

    def scheduled_cut(self, cpe_id: str, session_start: float) -> float | None:
        """Time at which the session starting now will be cut, or None.

        Applies the CPE's sync schedule when configured, the per-cycle skip
        probability (producing the paper's harmonic durations at multiples
        of the period), and the rare off-schedule overlong sessions.
        """
        behavior = self.behavior(cpe_id)
        period = behavior.period
        if not behavior.periodic or period is None:
            return None
        if self._rng.random() < self.spec.offschedule_prob:
            return session_start + period * self._rng.uniform(1.15, 3.4)
        skips = 0
        while self._rng.random() < self.spec.skip_prob:
            skips += 1
        if behavior.sync_second is None:
            return session_start + period * (1 + skips)
        earliest = session_start + (period - DAY) + MIN_SYNC_SESSION
        cut = self._next_daily_occurrence(behavior.sync_second, earliest)
        return cut + skips * period

    @staticmethod
    def _next_daily_occurrence(sync_second: float, earliest: float) -> float:
        """First instant >= earliest whose GMT second-of-day matches."""
        day_start = (earliest // DAY) * DAY
        candidate = day_start + sync_second
        while candidate < earliest:
            candidate += DAY
        return candidate

    def periodic_cut(self, cpe_id: str, now: float) -> None:
        """Tear the session down at its scheduled cut time."""
        self.concentrator.disconnect(cpe_id, now, cause="Session-Timeout")

    def reconnect(self, cpe_id: str, went_down_at: float, now: float,
                  lost_power: bool) -> ReconnectOutcome:
        """Re-attach after an outage.

        A power-cycled CPE always loses its session and thus its address.
        A state-holding CPE rides out network drops shorter than its
        threshold; everyone else re-establishes and is renumbered.
        """
        session = self.concentrator.active_session(cpe_id)
        if session is None:
            return ReconnectOutcome(self.connect(cpe_id, now), True)
        behavior = self.behavior(cpe_id)
        duration = now - went_down_at
        if (not lost_power and behavior.holds_state
                and duration < behavior.hold_threshold):
            return ReconnectOutcome(session.address, False)
        self.concentrator.disconnect(cpe_id, went_down_at,
                                     cause="Lost-Carrier")
        return ReconnectOutcome(self.connect(cpe_id, now), True)

    def admin_renumber(self, cpe_id: str, now: float) -> IPv4Address:
        """Admin-Reset: tear the session down and re-establish."""
        if self.concentrator.active_session(cpe_id) is not None:
            self.concentrator.disconnect(cpe_id, now, cause="Admin-Reset")
        return self.connect(cpe_id, now)


def build_plant(spec: IspSpec, pool: AddressPool,
                seed: int) -> DhcpPlant | PppPlant:
    """Instantiate the right plant kind for a spec."""
    if spec.access is AccessTechnology.DHCP:
        return DhcpPlant(spec, pool, seed)
    return PppPlant(spec, pool, seed)
