"""ISP plant: address pools, assignment policies, paper-matched profiles."""

from repro.isp.policy import (
    CpeBehavior,
    DhcpPlant,
    PppPlant,
    ReconnectOutcome,
    build_plant,
)
from repro.isp.pool import AddressPool, PoolPolicy
from repro.isp.profiles import (
    IspProfile,
    all_profiles,
    filler_profiles,
    paper_profiles,
    profile_by_name,
)
from repro.isp.spec import AccessTechnology, IspSpec

__all__ = [
    "AccessTechnology",
    "AddressPool",
    "CpeBehavior",
    "DhcpPlant",
    "IspProfile",
    "IspSpec",
    "PoolPolicy",
    "PppPlant",
    "ReconnectOutcome",
    "all_profiles",
    "build_plant",
    "filler_profiles",
    "paper_profiles",
    "profile_by_name",
]
