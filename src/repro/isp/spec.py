"""Declarative description of a simulated ISP.

An :class:`IspSpec` bundles everything the simulator needs to stand up one
autonomous system: its access technology (DHCP vs. PPPoE+Radius), address
pool layout and locality, periodic-renumbering behaviour, DHCP lease and
churn parameters, and the outage climate its customers experience.

The fields map directly onto mechanisms the paper identifies:

* ``period`` / ``periodic_fraction`` / ``sync_window`` — Section 4's
  periodic renumbering (Table 5, Figures 4-5);
* ``holds_state_fraction`` / ``hold_threshold_median`` — the Figure 9
  heterogeneity where some CPEs survive mid-length outages;
* ``lease_duration`` / ``churn_rate_per_hour`` — the DHCP reclaim dynamics
  behind LGI's outage-duration-dependent renumbering;
* ``plan`` / ``pool_policy`` — Table 7's cross-prefix allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isp.pool import PoolPolicy
from repro.net.bgpgen import AddressSpacePlan
from repro.util.timeutil import DAY, HOUR, MINUTE


class AccessTechnology(enum.Enum):
    """How subscribers attach and obtain addresses."""

    DHCP = "dhcp"
    PPP = "ppp"


@dataclass(frozen=True)
class IspSpec:
    """Full parameterization of one simulated ISP (see module docstring)."""

    name: str
    asn: int
    country: str
    access: AccessTechnology
    plan: AddressSpacePlan
    pool_policy: PoolPolicy = field(default_factory=PoolPolicy)

    # --- PPP periodic renumbering (Section 4) ---------------------------
    #: Radius Session-Timeout in seconds; None disables periodic cuts.
    period: float | None = None
    #: Fraction of CPEs subject to the periodic limit (BT: only ~a fifth).
    periodic_fraction: float = 1.0
    #: Optional second period used by part of the fleet (Table 5 shows
    #: Proximus at 36 h and 24 h, Orange Polska at 22 h and 24 h).
    alt_period: float | None = None
    #: Fraction of periodic CPEs using ``alt_period`` instead of ``period``.
    alt_period_fraction: float = 0.0
    #: GMT hour range [start, end) in which sync-capable CPEs reconnect.
    sync_window: tuple[int, int] | None = None
    #: Fraction of periodic CPEs that honour the sync window.
    sync_fraction: float = 0.0
    #: Per-cycle probability a scheduled cut is skipped (harmonic durations).
    skip_prob: float = 0.0
    #: Per-session probability of a non-harmonic overlong duration.
    offschedule_prob: float = 0.0

    # --- outage renumbering behaviour -----------------------------------
    #: Fraction of CPEs whose PPP session survives short network drops.
    holds_state_fraction: float = 0.0
    #: Median outage length (s) beyond which a state-holding CPE gives up.
    hold_threshold_median: float = DAY
    #: Log-space sigma of the hold threshold distribution.
    hold_threshold_sigma: float = 1.0

    # --- DHCP dynamics (Section 2.1, Figure 9 LGI panel) ----------------
    lease_duration: float = 4 * HOUR
    #: Exponential reclaim rate for expired bindings, per hour.
    churn_rate_per_hour: float = 0.02
    #: Probability an outage changes the address regardless of the lease.
    dhcp_change_prob: float = 0.01

    # --- administrative renumbering (Section 2.3, Section 8) -------------
    #: Day of year on which the ISP migrates every customer to its last
    #: routed prefix (None = never).  Requires a plan with >= 2 prefixes:
    #: regular allocation uses all but the final prefix, which is held in
    #: reserve as the migration target.
    admin_renumber_day: int | None = None

    # --- outage climate per CPE ------------------------------------------
    power_outages_per_year: float = 8.0
    network_outages_per_year: float = 15.0
    power_duration_median: float = 4 * MINUTE
    power_duration_sigma: float = 2.0
    network_duration_median: float = 5 * MINUTE
    network_duration_sigma: float = 2.2

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise SimulationError("ASN must be positive")
        if self.period is not None and self.period <= 0:
            raise SimulationError("period must be positive or None")
        if self.alt_period is not None and self.alt_period <= 0:
            raise SimulationError("alt_period must be positive or None")
        if self.alt_period is not None and self.period is None:
            raise SimulationError("alt_period requires a primary period")
        for name in ("periodic_fraction", "sync_fraction", "skip_prob",
                     "alt_period_fraction",
                     "offschedule_prob", "holds_state_fraction",
                     "dhcp_change_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    "%s must be in [0, 1], got %r" % (name, value)
                )
        if self.sync_window is not None:
            start, end = self.sync_window
            if not (0 <= start < 24 and 0 < end <= 24 and start < end):
                raise SimulationError(
                    "sync window must satisfy 0 <= start < end <= 24"
                )
        if self.lease_duration <= 0:
            raise SimulationError("lease duration must be positive")
        for name in ("churn_rate_per_hour", "power_outages_per_year",
                     "network_outages_per_year"):
            if getattr(self, name) < 0:
                raise SimulationError("%s must be non-negative" % name)
        for name in ("power_duration_median", "network_duration_median",
                     "hold_threshold_median"):
            if getattr(self, name) <= 0:
                raise SimulationError("%s must be positive" % name)
        if self.admin_renumber_day is not None:
            if not 1 <= self.admin_renumber_day <= 365:
                raise SimulationError("admin_renumber_day outside 1..365")
            if self.plan.num_prefixes < 2:
                raise SimulationError(
                    "administrative renumbering needs a reserve prefix")

    @property
    def is_periodic(self) -> bool:
        """True when the ISP enforces a session-length limit."""
        return self.access is AccessTechnology.PPP and self.period is not None
