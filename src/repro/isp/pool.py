"""Dynamic address pools spanning multiple routed prefixes.

Section 6 of the paper shows that ISPs commonly assign successive addresses
to the same customer from *different* BGP prefixes.  :class:`AddressPool`
models the ISP-side allocator: it owns a set of routed prefixes and hands
out free addresses according to a :class:`PoolPolicy` that controls how
sticky allocation is to the customer's previous prefix and /16.

Both the DHCP server and the PPPoE concentrator allocate through this one
class; they differ only in whether they *try* to preserve the exact previous
address (DHCP, RFC 2131 §4.3.1) before falling back to the pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import PoolExhaustedError, SimulationError
from repro.net.ipv4 import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class PoolPolicy:
    """Locality knobs for re-allocation after an address change.

    ``stay_bgp_prob``
        Probability that a renumbered customer is allocated from the same
        routed prefix as before.  Low values reproduce ISPs like Telecom
        Italia (85% of changes crossed BGP prefixes); high values reproduce
        DTAG and Verizon (roughly a quarter crossed).

    ``stay_slash16_prob``
        Given the customer stayed inside the same routed prefix that is
        *wider* than a /16, the probability the new address is drawn from
        the customer's previous /16 rather than uniformly from the prefix.
        This is what lets an ISP's 'Diff /16' exceed its 'Diff BGP'
        (BT in Table 7) without the two being equal.
    """

    stay_bgp_prob: float = 0.5
    stay_slash16_prob: float = 0.5

    def __post_init__(self) -> None:
        for name in ("stay_bgp_prob", "stay_slash16_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError("%s must be in [0, 1], got %r" % (name, value))


class AddressPool:
    """Allocates dynamic addresses from a set of disjoint prefixes."""

    def __init__(self, prefixes: Iterable[IPv4Prefix],
                 policy: PoolPolicy | None = None) -> None:
        self._prefixes: list[IPv4Prefix] = list(prefixes)
        if not self._prefixes:
            raise SimulationError("address pool needs at least one prefix")
        for i, p in enumerate(self._prefixes):
            for q in self._prefixes[i + 1:]:
                if p.contains_prefix(q) or q.contains_prefix(p):
                    raise SimulationError(
                        "pool prefixes overlap: %s and %s" % (p, q)
                    )
        self._policy = policy or PoolPolicy()
        self._allocated: set[int] = set()
        #: Optional allocation schedule: ``(from_time, prefixes)`` entries,
        #: sorted; before the first entry all prefixes allocate.
        self._schedule: list[tuple[float, tuple[IPv4Prefix, ...]]] = []

    @property
    def prefixes(self) -> Sequence[IPv4Prefix]:
        """The routed prefixes backing the pool."""
        return tuple(self._prefixes)

    @property
    def policy(self) -> PoolPolicy:
        """The locality policy used on re-allocation."""
        return self._policy

    @property
    def capacity(self) -> int:
        """Total number of addresses across all prefixes."""
        return sum(prefix.size for prefix in self._prefixes)

    @property
    def allocated_count(self) -> int:
        """Number of currently allocated addresses."""
        return len(self._allocated)

    def contains(self, address: IPv4Address) -> bool:
        """True when the address belongs to one of the pool's prefixes."""
        return self._prefix_of(address) is not None

    def is_allocated(self, address: IPv4Address) -> bool:
        """True when the address is currently handed out."""
        return address.value in self._allocated

    def _prefix_of(self, address: IPv4Address) -> IPv4Prefix | None:
        for prefix in self._prefixes:
            if prefix.contains(address):
                return prefix
        return None

    def try_allocate(self, address: IPv4Address) -> bool:
        """Allocate a specific address if it is free (DHCP preservation).

        Returns True on success.  Raises when the address is outside the
        pool — a server must never re-issue foreign space.
        """
        if self._prefix_of(address) is None:
            raise SimulationError("address %s outside pool" % address)
        if address.value in self._allocated:
            return False
        self._allocated.add(address.value)
        return True

    def release(self, address: IPv4Address) -> None:
        """Return an address to the pool."""
        try:
            self._allocated.remove(address.value)
        except KeyError:
            raise SimulationError(
                "releasing unallocated address %s" % address
            ) from None

    def schedule_allocation(self, from_time: float,
                            prefixes: Iterable[IPv4Prefix]) -> None:
        """Restrict allocation to ``prefixes`` from ``from_time`` on.

        Models administrative renumbering (Section 2.3's rare DHCP-server
        reconfiguration): addresses already handed out stay valid, but new
        allocations come only from the scheduled prefixes.  Entries must be
        added in time order.
        """
        chosen = tuple(prefixes)
        if not chosen:
            raise SimulationError("allocation schedule needs prefixes")
        for prefix in chosen:
            if prefix not in self._prefixes:
                raise SimulationError(
                    "scheduled prefix %s not part of the pool" % prefix)
        if self._schedule and from_time <= self._schedule[-1][0]:
            raise SimulationError("allocation schedule must be in time order")
        self._schedule.append((from_time, chosen))

    def active_prefixes(self, now: float | None) -> Sequence[IPv4Prefix]:
        """Prefixes allocation may draw from at time ``now``."""
        if now is None or not self._schedule:
            return tuple(self._prefixes)
        active: Sequence[IPv4Prefix] = tuple(self._prefixes)
        for from_time, prefixes in self._schedule:
            if from_time <= now:
                active = prefixes
            else:
                break
        return active

    def allocate(self, rng: random.Random,
                 previous: IPv4Address | None = None,
                 now: float | None = None) -> IPv4Address:
        """Allocate a fresh address, honouring the locality policy.

        When ``previous`` is given it is never returned (the caller handles
        exact preservation through :meth:`try_allocate`); it only biases
        which prefix and /16 the new address is drawn from.  ``now``
        selects the allocation schedule entry in force (None = no
        schedule restriction).
        """
        scopes = self._candidate_scopes(rng, previous,
                                        self.active_prefixes(now))
        for scope in scopes:
            address = self._random_free(rng, scope, avoid=previous)
            if address is not None:
                self._allocated.add(address.value)
                return address
        raise PoolExhaustedError(
            "no free address among %d prefixes" % len(self._prefixes)
        )

    def _candidate_scopes(self, rng: random.Random,
                          previous: IPv4Address | None,
                          eligible: Sequence[IPv4Prefix]
                          ) -> list[IPv4Prefix]:
        """Order allocation scopes from most to least preferred."""
        previous_prefix = None if previous is None else self._prefix_of(previous)
        if previous_prefix is not None and previous_prefix not in eligible:
            # The customer's old prefix has been administratively retired:
            # locality cannot apply.
            previous_prefix = None
            previous = None
        others = [p for p in eligible if p != previous_prefix]
        rng.shuffle(others)
        if previous_prefix is None:
            return others

        scopes: list[IPv4Prefix]
        if rng.random() < self._policy.stay_bgp_prob:
            scopes = [previous_prefix]
            if (previous_prefix.length < 16
                    and rng.random() < self._policy.stay_slash16_prob):
                # Narrow to the customer's previous /16 inside the prefix.
                scopes.insert(0, previous.prefix(16))  # type: ignore[union-attr]
            scopes.extend(others)
        else:
            scopes = others + [previous_prefix]
        return scopes

    def _random_free(self, rng: random.Random, scope: IPv4Prefix,
                     avoid: IPv4Address | None) -> IPv4Address | None:
        """Pick a uniformly random free address inside ``scope``.

        Tries random probes first; falls back to a linear scan from a random
        start so allocation stays correct even in a nearly full scope.
        """
        avoid_value = None if avoid is None else avoid.value
        size = scope.size
        for _ in range(16):
            offset = rng.randrange(size)
            value = scope.network + offset
            if value != avoid_value and value not in self._allocated:
                return IPv4Address(value)
        start = rng.randrange(size)
        for step in range(size):
            value = scope.network + (start + step) % size
            if value != avoid_value and value not in self._allocated:
                return IPv4Address(value)
        return None
