"""repro — reproduction of "Reasons Dynamic Addresses Change" (IMC 2016).

The package splits into:

* :mod:`repro.core` — the paper's analysis pipeline: probe filtering, the
  total-time-fraction metric, periodicity classification, outage detection
  and attribution, and prefix-level change analysis;
* substrates the analysis needs: :mod:`repro.net` (IPv4, tries, pfx2as),
  :mod:`repro.dhcp` and :mod:`repro.ppp` (address assignment protocols),
  :mod:`repro.isp` (pools, policies, paper-matched profiles),
  :mod:`repro.atlas` (the three RIPE Atlas dataset formats);
* :mod:`repro.sim` — an event simulator standing in for the 2015 RIPE
  Atlas measurement plane;
* :mod:`repro.experiments` — one driver per paper table and figure.

Quickstart::

    from repro.experiments.scenarios import small_world
    from repro.core import pipeline_for_world

    world = small_world(seed=7)
    results = pipeline_for_world(world).run()
    for name, count in results.table2_rows():
        print(name, count)
"""

from repro.core.pipeline import (
    AnalysisPipeline,
    AnalysisResults,
    pipeline_for_bundle,
    pipeline_for_world,
)
from repro.sim.scenario import ScenarioConfig, paper_scenario
from repro.sim.world import WorldData, build_world

__version__ = "1.0.0"

__all__ = [
    "AnalysisPipeline",
    "AnalysisResults",
    "ScenarioConfig",
    "WorldData",
    "__version__",
    "build_world",
    "paper_scenario",
    "pipeline_for_bundle",
    "pipeline_for_world",
]
