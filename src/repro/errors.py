"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class; parsing and simulation errors are distinguished
because dataset parsers are exercised against malformed input in tests.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParseError(ReproError):
    """A dataset record or address literal could not be parsed."""


class DatasetError(ReproError):
    """A dataset is internally inconsistent (out of order, missing month)."""


class ObservabilityError(ReproError):
    """A trace file or metrics payload violates the repro.obs schema."""


class SupervisionError(ReproError):
    """The supervised executor could not keep a worker pool alive."""


class EnvelopeCorruptError(SupervisionError):
    """A shard result envelope failed its integrity seal check."""


class DistError(ReproError):
    """The distributed coordinator/worker runtime failed irrecoverably."""


class WireProtocolError(DistError):
    """A dist socket frame violated the length-prefixed wire protocol."""


class SimulationError(ReproError):
    """A scenario is invalid or the simulator reached an impossible state."""


class PoolExhaustedError(SimulationError):
    """An ISP address pool had no free address to allocate."""
