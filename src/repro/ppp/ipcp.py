"""IP Control Protocol address assignment (RFC 1332).

After LCP and authentication, IPCP configures the IP layer.  Dynamic
address assignment is a Configure-Nak cycle: the subscriber requests
``0.0.0.0`` (meaning "assign me one"), the concentrator Naks with the
address it allocates, and the subscriber re-requests that address, which
is then Acked.  This is the protocol mechanism behind the paper's
observation that PPP customers get a *new* address on every reconnect —
nothing in IPCP remembers the previous one.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address
from repro.ppp.negotiation import (
    ConfigureAck,
    ConfigureNak,
    CpEndpoint,
    Reply,
    negotiate,
)

UNASSIGNED = IPv4Address(0)


def address_assignment_policy(assigned: IPv4Address):
    """Concentrator policy: force the subscriber onto ``assigned``."""

    def policy(options: Mapping[str, object]) -> Reply:
        requested = options.get("ip_address", UNASSIGNED)
        if requested != assigned:
            return ConfigureNak({"ip_address": assigned})
        return ConfigureAck(dict(options))

    return policy


def assign_address(assigned: IPv4Address,
                   requested: IPv4Address = UNASSIGNED) -> IPv4Address:
    """Run the IPCP exchange; returns the address the subscriber opens with.

    ``requested`` models a CPE asking for its previous address — the
    concentrator Naks it anyway, which is exactly why PPP renumbers.
    """
    subscriber = CpEndpoint(
        name="ipcp-subscriber", desired={"ip_address": requested})
    concentrator = CpEndpoint(
        name="ipcp-concentrator", desired={"ip_address": assigned},
        policy=address_assignment_policy(assigned))
    agreed, _ = negotiate(subscriber, concentrator)
    address = agreed.get("ip_address")
    if not isinstance(address, IPv4Address) or address != assigned:
        raise SimulationError(
            "IPCP converged on %r instead of %s" % (address, assigned)
        )
    return address
