"""Link Control Protocol option negotiation (RFC 1661).

LCP establishes the link before authentication and IPCP.  We negotiate the
two options that matter for a broadband session: the MRU and the magic
number (loopback detection).  The concentrator caps the MRU at the PPPoE
limit of 1492 bytes (RFC 2516), Nak-ing larger requests — a faithful,
testable slice of what real BRAS equipment does.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.ppp.negotiation import (
    ConfigureAck,
    ConfigureNak,
    CpEndpoint,
    Reply,
    negotiate,
)

#: Maximum receive unit over PPPoE (RFC 2516: 1500 - 8 bytes of overhead).
PPPOE_MRU = 1492


def mru_capping_policy(limit: int = PPPOE_MRU):
    """Build a policy that Naks MRUs above ``limit``."""

    def policy(options: Mapping[str, object]) -> Reply:
        mru = options.get("mru")
        if isinstance(mru, int) and mru > limit:
            return ConfigureNak({"mru": limit})
        return ConfigureAck(dict(options))

    return policy


def subscriber_endpoint(rng: random.Random, mru: int = 1500) -> CpEndpoint:
    """The CPE side: asks for a (possibly too large) MRU and a magic number."""
    return CpEndpoint(
        name="lcp-subscriber",
        desired={"mru": mru, "magic_number": rng.getrandbits(32)},
    )


def concentrator_endpoint(rng: random.Random) -> CpEndpoint:
    """The BRAS side: PPPoE MRU cap, own magic number."""
    return CpEndpoint(
        name="lcp-concentrator",
        desired={"mru": PPPOE_MRU, "magic_number": rng.getrandbits(32)},
        policy=mru_capping_policy(),
    )


def establish_link(rng: random.Random,
                   subscriber_mru: int = 1500) -> dict[str, object]:
    """Run LCP and return the subscriber's agreed options."""
    subscriber = subscriber_endpoint(rng, mru=subscriber_mru)
    concentrator = concentrator_endpoint(rng)
    agreed, _ = negotiate(subscriber, concentrator)
    return agreed
