"""PPP(oE) substrate: LCP/IPCP negotiation, sessions, Radius."""

from repro.ppp import ipcp, lcp, negotiation
from repro.ppp.radius import (
    AccessAccept,
    AccountingRecord,
    AcctStatus,
    RadiusServer,
)
from repro.ppp.session import PppoeConcentrator, PppPhase, PppSession

__all__ = [
    "AccessAccept",
    "AccountingRecord",
    "AcctStatus",
    "PppPhase",
    "PppSession",
    "PppoeConcentrator",
    "RadiusServer",
    "ipcp",
    "lcp",
    "negotiation",
]
