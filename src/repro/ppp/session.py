"""PPP(oE) session lifecycle and address assignment via IPCP.

Point-to-point subscribers (Section 2.2 of the paper) get an address when
the link comes up: PPP establishes the link (LCP), authenticates, and then
IPCP configures the IP address.  Crucially there is *no* preservation rule:
every reconnect is a fresh allocation from the ISP's dynamic pool, which is
why PPP ISPs renumber on outages of any duration (Figure 9, Orange panel).

:class:`PppoeConcentrator` is the ISP-side BRAS: it authorizes subscribers
against a :class:`~repro.ppp.radius.RadiusServer`, allocates addresses from
a pool, enforces the Radius ``Session-Timeout``, and emits accounting.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address
from repro.ppp import ipcp, lcp
from repro.ppp.radius import RadiusServer


class PppPhase(enum.Enum):
    """PPP phases per RFC 1661 section 3.2."""

    DEAD = "dead"
    ESTABLISH = "establish"
    AUTHENTICATE = "authenticate"
    NETWORK = "network"
    TERMINATE = "terminate"


@dataclass
class PppSession:
    """One subscriber session: link up through link down."""

    username: str
    session_id: int
    address: IPv4Address
    started_at: float
    session_timeout: float | None
    phase: PppPhase = PppPhase.NETWORK
    ended_at: float | None = None
    terminate_cause: str | None = None
    _phase_trace: list[PppPhase] = field(default_factory=list, repr=False)

    @property
    def expires_at(self) -> float | None:
        """Absolute time the concentrator will cut the session, or None."""
        if self.session_timeout is None:
            return None
        return self.started_at + self.session_timeout

    def is_active(self) -> bool:
        """True until the session is terminated."""
        return self.phase is PppPhase.NETWORK

    @property
    def phase_trace(self) -> list[PppPhase]:
        """Phases traversed while bringing the session up/down."""
        return list(self._phase_trace)


class PppoeConcentrator:
    """ISP-side access concentrator (BRAS) for PPPoE subscribers."""

    def __init__(self, allocator, radius: RadiusServer,
                 rng: random.Random) -> None:
        self._allocator = allocator
        self._radius = radius
        self._rng = rng
        self._active: dict[str, PppSession] = {}
        self._last_address: dict[str, IPv4Address] = {}

    @property
    def radius(self) -> RadiusServer:
        """The Radius server sessions are authorized against."""
        return self._radius

    def active_session(self, username: str) -> PppSession | None:
        """Return the subscriber's active session, if any."""
        return self._active.get(username)

    def connect(self, username: str, now: float) -> PppSession:
        """Bring up a session: LCP, authentication, IPCP address assignment.

        The address is a fresh pool allocation biased by the pool's locality
        policy toward (but never equal to) the subscriber's previous
        address — PPP deployments hand out whatever is free.
        """
        if username in self._active:
            raise SimulationError("subscriber %r already connected" % username)
        trace = [PppPhase.DEAD]
        # ESTABLISH: LCP brings the link up (MRU capped to the PPPoE limit).
        lcp.establish_link(self._rng)
        trace.append(PppPhase.ESTABLISH)
        # AUTHENTICATE: Radius authorizes and supplies Session-Timeout.
        accept = self._radius.authorize(username)
        trace.append(PppPhase.AUTHENTICATE)
        # NETWORK: IPCP assigns the address via the Configure-Nak cycle.
        # Even a CPE re-requesting its previous address gets Nak'd onto the
        # fresh allocation — the mechanism behind PPP renumbering.
        previous = self._last_address.get(username)
        allocated = self._allocator.allocate(self._rng, previous=previous,
                                             now=now)
        address = ipcp.assign_address(
            allocated,
            requested=previous if previous is not None else ipcp.UNASSIGNED)
        trace.append(PppPhase.NETWORK)
        session_id = self._radius.account_start(username, now)
        session = PppSession(
            username=username,
            session_id=session_id,
            address=address,
            started_at=now,
            session_timeout=accept.session_timeout,
        )
        session._phase_trace = trace
        self._active[username] = session
        self._last_address[username] = address
        return session

    def disconnect(self, username: str, now: float,
                   cause: str = "User-Request") -> PppSession:
        """Tear down the subscriber's session and free its address."""
        session = self._active.pop(username, None)
        if session is None:
            raise SimulationError("subscriber %r not connected" % username)
        session._phase_trace.append(PppPhase.TERMINATE)
        session.phase = PppPhase.DEAD
        session._phase_trace.append(PppPhase.DEAD)
        session.ended_at = now
        session.terminate_cause = cause
        self._allocator.release(session.address)
        self._radius.account_stop(username, now, session.session_id, cause)
        return session

    def enforce_timeout(self, username: str, now: float) -> PppSession | None:
        """Cut the session if its Session-Timeout has elapsed.

        Returns the terminated session when the cut happened, else None.
        The subscriber's CPE will immediately reconnect and receive a new
        address — the paper's periodic renumbering.
        """
        session = self._active.get(username)
        if session is None:
            return None
        expires = session.expires_at
        if expires is None or now < expires:
            return None
        return self.disconnect(username, expires, cause="Session-Timeout")
