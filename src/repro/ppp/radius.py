"""A minimal Radius server for PPPoE session authorization and accounting.

Maier et al. (cited in Section 5.3 of the paper) observed that neither CPE
nor Radius servers remember addresses, and that the Radius `Session-Timeout`
attribute is how an ISP caps session length — the mechanism behind the
paper's *periodic* address changes.  Private communication in the paper
confirmed a large European ISP uses PPPoE + Radius with a 24 h limit.

:class:`RadiusServer` grants access with an optional ``Session-Timeout`` and
keeps accounting records (Start/Stop) like a real deployment would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError


class AcctStatus(enum.Enum):
    """Accounting-Request Acct-Status-Type values we model."""

    START = "Start"
    STOP = "Stop"


@dataclass(frozen=True)
class AccessAccept:
    """Access-Accept attributes relevant to address lifetime."""

    username: str
    session_timeout: float | None

    def __post_init__(self) -> None:
        if self.session_timeout is not None and self.session_timeout <= 0:
            raise SimulationError(
                "Session-Timeout must be positive, got %r"
                % (self.session_timeout,)
            )


@dataclass(frozen=True)
class AccountingRecord:
    """One accounting event for a subscriber session."""

    username: str
    status: AcctStatus
    timestamp: float
    session_id: int
    terminate_cause: str | None = None


class RadiusServer:
    """Authorizes subscribers and records session accounting.

    ``session_timeout`` is the ISP-wide session length cap in seconds
    (None = unlimited).  Authorization is deliberately permissive — the
    churn analysis does not depend on credential handling — but unknown
    users can be rejected via ``known_users`` for tests.
    """

    def __init__(self, session_timeout: float | None = None,
                 known_users: set[str] | None = None) -> None:
        if session_timeout is not None and session_timeout <= 0:
            raise SimulationError("session timeout must be positive")
        self._session_timeout = session_timeout
        self._known_users = known_users
        self._records: list[AccountingRecord] = []
        self._next_session_id = 1

    @property
    def session_timeout(self) -> float | None:
        """The configured Session-Timeout in seconds, or None."""
        return self._session_timeout

    @property
    def accounting_records(self) -> list[AccountingRecord]:
        """All accounting records in arrival order."""
        return list(self._records)

    def authorize(self, username: str) -> AccessAccept:
        """Handle an Access-Request; raises for unknown users."""
        if self._known_users is not None and username not in self._known_users:
            raise SimulationError("Access-Reject for %r" % username)
        return AccessAccept(username, self._session_timeout)

    def account_start(self, username: str, now: float) -> int:
        """Record an Accounting Start; returns the session id."""
        session_id = self._next_session_id
        self._next_session_id += 1
        self._records.append(
            AccountingRecord(username, AcctStatus.START, now, session_id)
        )
        return session_id

    def account_stop(self, username: str, now: float, session_id: int,
                     terminate_cause: str) -> None:
        """Record an Accounting Stop with a terminate cause."""
        starts = [r for r in self._records
                  if r.session_id == session_id and r.status is AcctStatus.START]
        if not starts:
            raise SimulationError(
                "accounting stop for unknown session %d" % session_id
            )
        self._records.append(
            AccountingRecord(username, AcctStatus.STOP, now, session_id,
                             terminate_cause=terminate_cause)
        )

    def session_durations(self, username: str) -> list[float]:
        """Return completed session lengths for a subscriber (for tests)."""
        starts: dict[int, float] = {}
        durations: list[float] = []
        for record in self._records:
            if record.username != username:
                continue
            if record.status is AcctStatus.START:
                starts[record.session_id] = record.timestamp
            elif record.session_id in starts:
                durations.append(record.timestamp - starts.pop(record.session_id))
        return durations
