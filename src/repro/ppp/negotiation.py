"""Generic PPP control-protocol option negotiation (RFC 1661 section 4).

LCP and IPCP share one negotiation shape: each side sends
Configure-Request with its desired options; the peer answers
Configure-Ack (all acceptable), Configure-Nak (acceptable with different
values — the suggested values ride back in the Nak), or Configure-Reject
(options it will not negotiate at all).  A side reaches OPENED once it has
both sent and received an Ack.

:class:`CpEndpoint` implements one side, parameterized by the option set it
wants and a policy that judges the peer's request.  :func:`negotiate` runs
the exchange to completion.  IPCP's address assignment (the paper's
Section 2.2) is exactly a Nak cycle: the subscriber requests address
0.0.0.0 and the concentrator Naks with the address it assigns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import SimulationError


class CpState(enum.Enum):
    """Control-protocol automaton states (RFC 1661 section 4.2 subset)."""

    INITIAL = "initial"
    REQ_SENT = "req-sent"
    ACK_RCVD = "ack-rcvd"
    ACK_SENT = "ack-sent"
    OPENED = "opened"


@dataclass(frozen=True)
class ConfigureRequest:
    """Configure-Request carrying the sender's desired options."""

    options: Mapping[str, object]


@dataclass(frozen=True)
class ConfigureAck:
    """Configure-Ack: every option acceptable as sent."""

    options: Mapping[str, object]


@dataclass(frozen=True)
class ConfigureNak:
    """Configure-Nak: options negotiable but with these suggested values."""

    suggested: Mapping[str, object]


@dataclass(frozen=True)
class ConfigureReject:
    """Configure-Reject: these options are not negotiable at all."""

    names: tuple[str, ...]


Reply = ConfigureAck | ConfigureNak | ConfigureReject

#: A policy maps the peer's requested options to a reply.
Policy = Callable[[Mapping[str, object]], Reply]


def accept_all(options: Mapping[str, object]) -> Reply:
    """The trivial policy: Ack whatever the peer asks."""
    return ConfigureAck(dict(options))


@dataclass
class CpEndpoint:
    """One side of an LCP/IPCP negotiation."""

    name: str
    desired: dict[str, object]
    policy: Policy = accept_all
    state: CpState = CpState.INITIAL
    #: Options the peer acknowledged for us (ours, possibly Nak-adjusted).
    agreed: dict[str, object] = field(default_factory=dict)
    sent_requests: int = 0

    def next_request(self) -> ConfigureRequest:
        """Emit our Configure-Request (re-sent after a Nak)."""
        self.sent_requests += 1
        if self.state is CpState.INITIAL:
            self.state = CpState.REQ_SENT
        return ConfigureRequest(dict(self.desired))

    def receive_request(self, request: ConfigureRequest) -> Reply:
        """Judge the peer's request with our policy."""
        reply = self.policy(request.options)
        if isinstance(reply, ConfigureAck):
            if self.state is CpState.ACK_RCVD:
                self.state = CpState.OPENED
            elif self.state is not CpState.OPENED:
                self.state = CpState.ACK_SENT
        return reply

    def receive_reply(self, reply: Reply) -> bool:
        """Process the peer's verdict on our request.

        Returns True when we must re-send an adjusted Configure-Request.
        """
        if isinstance(reply, ConfigureAck):
            self.agreed = dict(reply.options)
            if self.state is CpState.ACK_SENT:
                self.state = CpState.OPENED
            elif self.state is not CpState.OPENED:
                self.state = CpState.ACK_RCVD
            return False
        if isinstance(reply, ConfigureNak):
            # Adopt the peer's suggested values and try again.
            self.desired.update(reply.suggested)
            return True
        if isinstance(reply, ConfigureReject):
            for name in reply.names:
                self.desired.pop(name, None)
            return True
        raise SimulationError("unknown reply %r" % (reply,))

    @property
    def is_open(self) -> bool:
        """True when the protocol reached OPENED on this side."""
        return self.state is CpState.OPENED


def negotiate(initiator: CpEndpoint, responder: CpEndpoint,
              max_rounds: int = 10) -> tuple[dict[str, object],
                                             dict[str, object]]:
    """Run both directions of a negotiation to OPENED.

    Returns ``(initiator_agreed, responder_agreed)``.  Raises when either
    side fails to converge within ``max_rounds`` request cycles — a
    non-converging policy (e.g. a Nak loop) is a configuration bug.
    """
    for side_a, side_b in ((initiator, responder), (responder, initiator)):
        for _ in range(max_rounds):
            reply = side_b.receive_request(side_a.next_request())
            if not side_a.receive_reply(reply):
                break
        else:
            raise SimulationError(
                "%s failed to converge after %d rounds"
                % (side_a.name, max_rounds)
            )
    if not (initiator.is_open and responder.is_open):
        raise SimulationError("negotiation did not open both sides")
    return initiator.agreed, responder.agreed
