"""CODE_VERSION_PACKAGES must stay in sync with stage reachability.

The artifact cache key hashes the packages in ``CODE_VERSION_PACKAGES``;
a module that a stage function can transitively import but that is not
hashed could change behaviour without invalidating cached artifacts
(DESIGN.md §10).  Two layers of defence:

* RPR007 runs the full interprocedural closure check inside the lint
  pass (and in CI) — asserted clean here so a desync fails the runtime
  suite too, not just ``pytest -m lint``;
* a direct structural check that every registered stage function's own
  module is covered, which pins the invariant without going through the
  analyzer at all.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.devtools.driver import run_lint
from repro.runtime.cache import CODE_VERSION_PACKAGES
from repro.runtime.stages import STAGES

SRC_REPRO = Path(repro.__file__).resolve().parent


def _covered_prefixes() -> list[str]:
    return [
        "repro.%s" % (entry[:-3] if entry.endswith(".py") else entry)
        for entry in CODE_VERSION_PACKAGES
    ]


def test_stage_function_modules_are_hashed():
    prefixes = _covered_prefixes()
    for spec in STAGES:
        module = spec.func.__module__
        assert any(module == p or module.startswith(p + ".")
                   for p in prefixes), (
            "stage %r function lives in %s, which CODE_VERSION_PACKAGES "
            "does not hash" % (spec.name, module))


def test_stage_import_closure_is_covered():
    result = run_lint([SRC_REPRO], rules=["RPR007"])
    assert result.diagnostics == [], (
        "code_version hash set out of sync with stage reachability:\n%s"
        % "\n".join(d.format() for d in result.diagnostics))


def test_rpr007_fires_when_reachable_module_is_unhashed(tmp_path):
    """Acceptance proof: a stage reaching an unhashed module is caught.

    Copies the real tree, makes ``repro.core.pipeline`` import
    ``repro.sim`` (a legal *downward* DAG edge that RPR003 permits, but
    one that CODE_VERSION_PACKAGES does not hash) and asserts RPR007
    reports the gap with an import chain.
    """
    import shutil

    tree = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, tree, ignore=shutil.ignore_patterns(
        "__pycache__", "*.pyc"))
    pipeline = tree / "core" / "pipeline.py"
    pipeline.write_text(
        pipeline.read_text(encoding="utf-8").replace(
            "from __future__ import annotations",
            "from __future__ import annotations\n"
            "from repro.sim import outages as _outages",
            1),
        encoding="utf-8")

    result = run_lint([tree], rules=["RPR007"])
    messages = [d.message for d in result.diagnostics]
    assert any("repro.sim" in m and "CODE_VERSION_PACKAGES" in m
               for m in messages), messages


def test_rpr007_clean_after_adding_package_to_hash_set(tmp_path):
    """The fix RPR007 suggests (hash the package) actually silences it."""
    import shutil

    tree = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, tree, ignore=shutil.ignore_patterns(
        "__pycache__", "*.pyc"))
    pipeline = tree / "core" / "pipeline.py"
    pipeline.write_text(
        pipeline.read_text(encoding="utf-8").replace(
            "from __future__ import annotations",
            "from __future__ import annotations\n"
            "from repro.sim import outages as _outages",
            1),
        encoding="utf-8")
    # sim itself plus the layers it sits on that the base set omits
    cache_module = tree / "runtime" / "cache.py"
    cache_module.write_text(
        cache_module.read_text(encoding="utf-8").replace(
            '"core",', '"core", "dhcp", "ppp", "isp", "sim",', 1),
        encoding="utf-8")

    result = run_lint([tree], rules=["RPR007"])
    assert result.diagnostics == [], [d.format() for d in result.diagnostics]
