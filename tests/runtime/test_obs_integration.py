"""Observability through the executor: spans, metrics, start methods.

The contracts under test:

* every stage in ``topological_order()`` gets a stage span, and fan-out
  stages additionally ship per-shard worker spans tagged with their
  shard index;
* ``fork`` and ``spawn`` pools produce bit-identical results digests;
* ``repro-run --trace`` writes a schema-valid Chrome trace covering the
  whole run, and ``--jobs 0`` / oversubscription are resolved and
  reported at the CLI boundary.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import obs
from repro.runtime import (
    RuntimeConfig,
    resolve_start_method,
    results_digest,
    runner_for_bundle,
)
from repro.runtime.cli import main, resolve_jobs
from repro.runtime.stages import STAGES, cacheable_stages, topological_order

pytestmark = pytest.mark.runtime


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.drain_spans()
    obs.metrics().drain()
    yield
    obs.drain_spans()
    obs.metrics().drain()


def test_serial_run_records_a_span_per_stage(bundle):
    runner_for_bundle(bundle, RuntimeConfig(jobs=1)).run()
    spans = obs.current_spans()
    stage_names = [s.name for s in spans if s.category == "stage"]
    assert stage_names == [spec.name for spec in topological_order()]
    (run_span,) = [s for s in spans if s.category == "run"]
    assert run_span.attr("jobs") == 1
    # The run span closes after every stage span it encloses.
    assert all(run_span.end >= s.end for s in spans)


def test_sharded_run_ships_worker_spans_with_shard_tags(bundle):
    runner = runner_for_bundle(bundle, RuntimeConfig(jobs=2))
    runner.run()
    spans = obs.current_spans()
    shard_spans = [s for s in spans if s.category == "shard"]
    fan_out = {spec.name for spec in STAGES if spec.fan_out}
    assert {s.attr("stage") for s in shard_spans} == fan_out
    for stage in fan_out:
        indices = [s.attr("shard") for s in shard_spans
                   if s.attr("stage") == stage]
        # Absorbed in shard order, tagged 0..n-1 with no gaps.
        assert indices == list(range(len(indices)))
    # Worker spans carry worker pids, distinct from the driver's.
    assert any(s.pid != os.getpid() for s in shard_spans)
    counters = obs.metrics_snapshot()["counters"]
    assert counters["runtime.worker.tasks"] == len(shard_spans)


def test_stage_spans_mark_cache_hits(bundle, tmp_path):
    config = RuntimeConfig(jobs=1, cache_dir=tmp_path / "cache")
    runner_for_bundle(bundle, config).run()
    obs.drain_spans()
    obs.metrics().drain()
    warm = runner_for_bundle(bundle, RuntimeConfig(
        jobs=1, cache_dir=tmp_path / "cache"))
    warm.run()
    stage_spans = [s for s in obs.current_spans() if s.category == "stage"]
    cached = {s.name: s.attr("cached") for s in stage_spans}
    assert all(cached[spec.name] for spec in cacheable_stages())
    counters = obs.metrics_snapshot()["counters"]
    assert counters["cache.hits"] == len(cacheable_stages())
    assert counters["cache.misses"] == 0


def test_fork_and_spawn_digests_are_identical(bundle):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("platform has no fork start method")
    digests = {}
    for method in ("fork", "spawn"):
        runner = runner_for_bundle(bundle, RuntimeConfig(
            jobs=2, start_method=method))
        digests[method] = results_digest(runner.run())
        assert runner.start_method == method
    assert digests["fork"] == digests["spawn"]


def test_resolve_start_method_validates_and_auto_detects():
    available = multiprocessing.get_all_start_methods()
    assert resolve_start_method() in available
    assert resolve_start_method("spawn") == "spawn"
    with pytest.raises(ValueError, match="not available"):
        resolve_start_method("no-such-method")
    with pytest.raises(ValueError, match="start_method"):
        RuntimeConfig(start_method="forkserver")


def test_resolve_jobs_zero_is_cpu_count():
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    assert resolve_jobs(3) == 3


def test_report_records_oversubscription(bundle):
    jobs = (os.cpu_count() or 1) + 1
    runner = runner_for_bundle(bundle, RuntimeConfig(jobs=jobs))
    runner.run()
    assert runner.report.oversubscribed
    assert runner.report.cpu_count == (os.cpu_count() or 1)
    rendered = runner.report.render()
    assert "OVERSUBSCRIBED" in rendered
    gauges = obs.metrics_snapshot()["gauges"]
    assert gauges["runtime.jobs.effective"] == jobs
    assert gauges["runtime.oversubscribed"] == 1


def test_cli_trace_writes_schema_valid_file(bundle_dir, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["--data", str(bundle_dir), "--jobs", "2",
                 "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert str(trace) in out
    payload = obs.load_trace(trace)  # validates against the schema
    names = {event["name"] for event in payload["traceEvents"]
             if event["cat"] == "stage"}
    assert names == {spec.name for spec in topological_order()}
    assert any(event["cat"] == "shard"
               for event in payload["traceEvents"])
    assert payload["meta"]["jobs"] == 2
    assert payload["meta"]["results_digest"]
    assert payload["meta"]["start_method"] in ("fork", "spawn")
    # Ingest accounting from the bundle load rides along in the metrics.
    assert payload["metrics"]["counters"]["ingest.parsed.connlog"] > 0


def test_cli_jobs_zero_and_oversubscription_warning(bundle_dir, capsys):
    jobs = (os.cpu_count() or 1) + 1
    assert main(["--data", str(bundle_dir), "--jobs", str(jobs)]) == 0
    captured = capsys.readouterr()
    assert "warning: --jobs %d exceeds" % jobs in captured.err
    assert "OVERSUBSCRIBED" in captured.out

    assert main(["--data", str(bundle_dir), "--jobs", "0"]) == 0
    captured = capsys.readouterr()
    assert "jobs=%d" % (os.cpu_count() or 1) in captured.out
    assert "warning" not in captured.err
