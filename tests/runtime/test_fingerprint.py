"""Fingerprint helpers and bundle stamping."""

from __future__ import annotations

from repro.sim.io import FINGERPRINT_FILE, bundle_fingerprint
from repro.util import fingerprint as fp


def test_hash_text_matches_hash_bytes():
    assert fp.hash_text("abc") == fp.hash_bytes(b"abc")


def test_hash_files_depends_on_order_and_content(tmp_path):
    one = tmp_path / "one.txt"
    two = tmp_path / "two.txt"
    one.write_text("alpha")
    two.write_text("beta")
    forward = fp.hash_files([one, two])
    assert forward == fp.hash_files([one, two])
    assert forward != fp.hash_files([two, one])
    one.write_text("alpha!")
    assert forward != fp.hash_files([one, two])


def test_combine_is_delimited():
    assert fp.combine("ab", "c") != fp.combine("a", "bc")


def test_short_abbreviates():
    digest = fp.hash_text("x")
    assert fp.short(digest) == digest[:fp.SHORT_LENGTH]


def test_write_world_stamps_matching_fingerprint(bundle_dir, bundle):
    stamped = (bundle_dir / FINGERPRINT_FILE).read_text().strip()
    assert stamped == bundle_fingerprint(bundle_dir)
    assert stamped == bundle.fingerprint
    assert len(stamped) == 64


def test_fingerprint_ignores_the_stamp_file_itself(bundle_dir):
    before = bundle_fingerprint(bundle_dir)
    (bundle_dir / FINGERPRINT_FILE).write_text("tampered\n")
    assert bundle_fingerprint(bundle_dir) == before
