"""Executor equivalence and cache behavior over a real bundle.

The contract under test: ``jobs=1``, ``jobs=4`` and a warm-cache run all
produce *identical* analysis results (same canonical digest, same
rendered tables and figures), a warm re-run computes nothing, and
mutating one connlog line changes the bundle fingerprint so every stage
re-runs.
"""

from __future__ import annotations

import shutil

import pytest

from repro.experiments.registry import get_experiment
from repro.runtime import (
    RuntimeConfig,
    ShardedRunner,
    results_digest,
    runner_for_bundle,
    runner_for_world,
)
from repro.runtime.stages import cacheable_stages
from repro.sim.io import load_bundle

pytestmark = pytest.mark.runtime

#: Renderings compared byte-for-byte across execution modes.
RENDERED_EXPERIMENTS = ("table2", "table5", "figure1", "figure6")


def _render_all(results) -> dict[str, str]:
    return {name: get_experiment(name)(results).text
            for name in RENDERED_EXPERIMENTS}


@pytest.fixture(scope="module")
def serial_results(bundle):
    return runner_for_bundle(bundle, RuntimeConfig(jobs=1)).run()


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_results_identical_to_serial(bundle, serial_results, jobs):
    parallel = runner_for_bundle(bundle, RuntimeConfig(jobs=jobs)).run()
    assert results_digest(parallel) == results_digest(serial_results)
    assert _render_all(parallel) == _render_all(serial_results)


def test_warm_cache_run_identical_and_computes_nothing(
        bundle, serial_results, tmp_path):
    config = RuntimeConfig(jobs=4, cache_dir=tmp_path / "cache")
    cold = runner_for_bundle(bundle, config)
    cold_results = cold.run()
    # One store per cacheable stage artifact, plus the supervisor's
    # per-shard checkpoints and manifests for the fan-out stages.
    assert cold.cache.stats.stores >= len(cacheable_stages())
    assert cold.report.cached_stages == []

    warm = runner_for_bundle(bundle, RuntimeConfig(
        jobs=1, cache_dir=tmp_path / "cache"))
    warm_results = warm.run()
    # Every cacheable stage served from cache; the uncacheable ones
    # (cheap projections) recompute by design.
    assert warm.report.cached_stages == [
        spec.name for spec in cacheable_stages()]
    assert warm.cache.stats.misses == 0
    assert results_digest(warm_results) == results_digest(serial_results)
    assert results_digest(cold_results) == results_digest(serial_results)
    assert _render_all(warm_results) == _render_all(serial_results)


def test_mutated_connlog_changes_fingerprint_and_reruns_stages(
        bundle_dir, bundle, tmp_path):
    cache_dir = tmp_path / "cache"
    primer = runner_for_bundle(bundle, RuntimeConfig(cache_dir=cache_dir))
    primer.run()
    assert primer.cache.stats.stores == len(cacheable_stages())

    mutated_dir = tmp_path / "mutated"
    shutil.copytree(bundle_dir, mutated_dir)
    connlog = mutated_dir / "connlog.tsv"
    lines = connlog.read_text().splitlines()
    probe, start, end, address = lines[0].split("\t")
    # Nudge one connection's end time: still well-formed, different bytes.
    lines[0] = "\t".join([probe, start, str(int(float(end)) + 1), address])
    connlog.write_text("\n".join(lines) + "\n")

    mutated = load_bundle(mutated_dir)
    assert mutated.fingerprint != bundle.fingerprint

    rerun = runner_for_bundle(mutated, RuntimeConfig(cache_dir=cache_dir))
    rerun.run()
    # Nothing under the old fingerprint applies: every stage recomputes.
    assert rerun.report.cached_stages == []
    assert rerun.cache.stats.misses == len(cacheable_stages())

    # The untouched bundle still warm-hits the original artifacts.
    unchanged = runner_for_bundle(bundle, RuntimeConfig(cache_dir=cache_dir))
    unchanged.run()
    assert unchanged.report.cached_stages == [
        spec.name for spec in cacheable_stages()]


def test_world_runner_parallel_matches_serial(world):
    # (World vs bundle digests legitimately differ: bundle serialization
    # rounds connlog timestamps to whole seconds.)
    from_world_parallel = runner_for_world(world, RuntimeConfig(jobs=2))
    from_world_serial = runner_for_world(world, RuntimeConfig(jobs=1))
    assert (results_digest(from_world_parallel.run())
            == results_digest(from_world_serial.run()))
    assert from_world_parallel.fingerprint == from_world_serial.fingerprint
    assert from_world_parallel.fingerprint != ""


def test_synthetic_bundle_without_fingerprint_never_caches(
        bundle, tmp_path):
    runner = ShardedRunner(
        bundle.connlog, bundle.archive, bundle.kroot, bundle.uptime,
        bundle.ip2as, fingerprint="",
        config=RuntimeConfig(cache_dir=tmp_path / "cache"))
    runner.run()
    assert runner.cache.stats.stores == 0


def test_config_rejects_bad_values():
    with pytest.raises(ValueError, match="jobs"):
        RuntimeConfig(jobs=0)
    with pytest.raises(ValueError, match="shards"):
        RuntimeConfig(shards=0)
