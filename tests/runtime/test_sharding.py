"""Sharding is deterministic, balanced, and order-preserving."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.sharding import OVERSHARD, partition, shard_count


@given(st.lists(st.integers(), max_size=200), st.integers(1, 40))
def test_partition_reassembles_input(items, shards):
    chunks = partition(items, shards)
    flattened = [item for chunk in chunks for item in chunk]
    assert flattened == items


@given(st.lists(st.integers(), min_size=1, max_size=200),
       st.integers(1, 40))
def test_partition_is_balanced_and_dense(items, shards):
    chunks = partition(items, shards)
    sizes = [len(chunk) for chunk in chunks]
    assert all(size > 0 for size in sizes)
    assert max(sizes) - min(sizes) <= 1
    assert len(chunks) == min(shards, len(items))


@given(st.lists(st.integers(), max_size=100), st.integers(1, 20))
def test_partition_is_deterministic(items, shards):
    assert partition(items, shards) == partition(items, shards)


def test_partition_rejects_nonpositive_shards():
    with pytest.raises(ValueError, match="shards must be positive"):
        partition([1, 2, 3], 0)


def test_shard_count_defaults_to_overshard():
    assert shard_count(jobs=4, items=1000) == 4 * OVERSHARD


def test_shard_count_clamps_to_items():
    assert shard_count(jobs=4, items=3) == 3
    assert shard_count(jobs=4, items=0) == 1


def test_shard_count_explicit_override():
    assert shard_count(jobs=4, items=1000, shards=7) == 7
