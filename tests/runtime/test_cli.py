"""repro-run command-line driver."""

from __future__ import annotations

import pytest

from repro.runtime.cli import main

pytestmark = pytest.mark.runtime


def test_list_stages(capsys):
    assert main(["--list-stages"]) == 0
    out = capsys.readouterr().out
    assert "filter" in out and "gap_events_by_probe" in out


def test_run_bundle_cold_then_warm(bundle_dir, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--data", str(bundle_dir), "--jobs", "2",
                 "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert "sharded" in cold and "digest" in cold
    assert "7 miss" in cold and "7 stored" in cold

    assert main(["--data", str(bundle_dir), "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert "cached" in warm and "7 hit" in warm

    digest = [line for line in cold.splitlines() if "digest" in line]
    assert digest == [line for line in warm.splitlines()
                      if "digest" in line]


def test_run_rejects_missing_bundle(tmp_path, capsys):
    assert main(["--data", str(tmp_path / "nope")]) == 1
    assert "meta.json" in capsys.readouterr().err


def test_clear_cache_requires_cache_dir(capsys):
    assert main(["--clear-cache"]) == 2
    assert "--cache-dir" in capsys.readouterr().err


def test_clear_cache_empties_store(bundle_dir, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--data", str(bundle_dir), "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["--clear-cache", "--cache-dir", cache_dir]) == 0
    assert "removed 7" in capsys.readouterr().out
