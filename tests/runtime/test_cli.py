"""repro-run command-line driver."""

from __future__ import annotations

import pytest

from repro.runtime.cli import main

pytestmark = pytest.mark.runtime


def test_list_stages(capsys):
    assert main(["--list-stages"]) == 0
    out = capsys.readouterr().out
    assert "filter" in out and "gap_events_by_probe" in out


def test_run_bundle_cold_then_warm(bundle_dir, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--data", str(bundle_dir), "--jobs", "2",
                 "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert "sharded" in cold and "digest" in cold
    # One miss per cacheable stage artifact; the store count also
    # includes the supervisor's per-shard checkpoints and manifests, so
    # don't pin it.
    assert "6 miss" in cold and "stored" in cold

    assert main(["--data", str(bundle_dir), "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert "cached" in warm and "6 hit" in warm

    digest = [line for line in cold.splitlines() if "digest" in line]
    assert digest == [line for line in warm.splitlines()
                      if "digest" in line]


def test_run_rejects_missing_bundle(tmp_path, capsys):
    assert main(["--data", str(tmp_path / "nope")]) == 1
    assert "meta.json" in capsys.readouterr().err


def test_clear_cache_requires_cache_dir(capsys):
    assert main(["--clear-cache"]) == 2
    assert "--cache-dir" in capsys.readouterr().err


def test_clear_cache_empties_store(bundle_dir, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--data", str(bundle_dir), "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["--clear-cache", "--cache-dir", cache_dir]) == 0
    assert "removed 6" in capsys.readouterr().out


def test_parse_inject_spec_builds_a_plan():
    from repro.runtime.cli import parse_inject_spec

    plan = parse_inject_spec(
        "seed=7,worker_crash=0.25,envelope_corrupt=0.5,slow_delay_s=0.01")
    assert plan.seed == 7
    assert plan.worker_crash == 0.25
    assert plan.envelope_corrupt == 0.5
    assert plan.slow_delay_s == 0.01
    assert not plan.persistent

    assert parse_inject_spec("seed=1,worker_hang=1,persistent").persistent
    assert parse_inject_spec("persistent=false,worker_slow=0.5").seed == 0


@pytest.mark.parametrize("spec", [
    "seed=1,bogus_kind=0.5",
    "seed=1,worker_crash",
    "worker_crash=2.0",  # plan validation: rate out of [0, 1]
])
def test_parse_inject_spec_rejects_bad_specs(spec):
    from repro.runtime.cli import parse_inject_spec

    with pytest.raises(ValueError):
        parse_inject_spec(spec)


def test_run_with_injected_faults_recovers_and_reconciles(
        bundle_dir, capsys):
    assert main(["--data", str(bundle_dir), "--jobs", "2",
                 "--inject", "seed=3,worker_crash=0.3,envelope_corrupt=0.3",
                 "--max-retries", "6"]) == 0
    out = capsys.readouterr().out
    assert "process faults (seed 3)" in out
    assert "0 abandoned" in out
    assert "DEGRADED" not in out


def test_run_resume_flag_round_trips(bundle_dir, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--data", str(bundle_dir), "--jobs", "2",
                 "--cache-dir", cache_dir]) == 0
    first = capsys.readouterr().out
    assert main(["--data", str(bundle_dir), "--jobs", "2",
                 "--cache-dir", cache_dir, "--resume"]) == 0
    resumed = capsys.readouterr().out
    # Nothing was interrupted, so the stage artifacts win before any
    # checkpoint is consulted — the digests must agree either way.
    digest = [line for line in first.splitlines() if "digest" in line]
    assert digest == [line for line in resumed.splitlines()
                      if "digest" in line]
