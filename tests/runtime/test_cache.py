"""Artifact cache: addressing, atomicity, self-healing, eviction."""

from __future__ import annotations

from repro.runtime.cache import ArtifactCache, code_version


def _key(stage: str = "spans", fingerprint: str = "f" * 64) -> str:
    return ArtifactCache.key(fingerprint, stage, code_version(), "params")


def test_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    payload = {"spans_by_probe": {1: ["a"], 2: []}}
    cache.store(_key(), payload)
    hit, value = cache.load(_key(), stage="spans")
    assert hit and value == payload
    assert cache.stats.hits == 1 and cache.stats.stores == 1


def test_miss_on_unknown_key(tmp_path):
    cache = ArtifactCache(tmp_path)
    hit, value = cache.load(_key("gaps"), stage="gaps")
    assert not hit and value is None
    assert cache.stats.miss_stages == ["gaps"]


def test_key_distinguishes_every_component():
    base = _key()
    assert _key(fingerprint="e" * 64) != base
    assert _key(stage="gaps") != base
    assert ArtifactCache.key("f" * 64, "spans", "other-version",
                             "params") != base
    assert ArtifactCache.key("f" * 64, "spans", code_version(),
                             "other-params") != base


def test_corrupt_entry_behaves_as_miss_and_heals(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store(_key(), {"x": 1})
    (path,) = cache.entries()
    path.write_bytes(b"not a pickle")
    hit, _ = cache.load(_key())
    assert not hit
    assert not path.exists()


def test_eviction_drops_oldest_first(tmp_path):
    import os
    cache = ArtifactCache(tmp_path)
    cache.store(_key("a"), list(range(100)))
    (old,) = cache.entries()
    os.utime(old, (1, 1))  # definitely least-recently used
    # Budget fits exactly one entry: storing a second evicts the oldest.
    cache.max_bytes = cache.total_bytes() + 10
    cache.store(_key("b"), list(range(100)))
    remaining = cache.entries()
    assert old not in remaining and len(remaining) == 1
    assert cache.stats.evicted == 1


def test_clear_empties_store(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store(_key("a"), 1)
    cache.store(_key("b"), 2)
    assert cache.clear() == 2
    assert cache.entries() == []
    assert cache.total_bytes() == 0


def test_code_version_is_stable_and_hexadecimal():
    assert code_version() == code_version()
    assert len(code_version()) == 64
    int(code_version(), 16)


def test_hit_protects_entry_from_eviction(tmp_path):
    import os
    cache = ArtifactCache(tmp_path)
    cache.store(_key("a"), list(range(100)))
    cache.store(_key("b"), list(range(100)))
    for path in cache.entries():
        os.utime(path, (1, 1))  # both look ancient
    # A hit refreshes the entry's access time via os.utime...
    hit, _ = cache.load(_key("a"), stage="a")
    assert hit
    # ...so when the budget forces one eviction, the *unread* entry goes.
    cache.max_bytes = cache.total_bytes() + 10
    cache.store(_key("c"), list(range(100)))
    remaining = {path.name for path in cache.entries()}
    assert _key("a") + ".pkl" in remaining
    assert _key("b") + ".pkl" not in remaining
    assert cache.stats.evicted == 1


def test_eviction_deterministic_under_coarse_utime_granularity(
        tmp_path, monkeypatch):
    """Filesystems with one-second timestamps collapse access times.

    When every entry carries the identical mtime the LRU order is
    undefined by time alone; eviction must still be deterministic (name
    tiebreak) and must still shrink the store below the budget.
    """
    import os as real_os

    from repro.runtime import cache as cache_mod

    true_utime = real_os.utime

    def coarse_utime(path, times=None):
        # A clock that only ever reads whole seconds, frozen at 1000.
        true_utime(path, (1000, 1000))

    monkeypatch.setattr(cache_mod.os, "utime", coarse_utime)
    cache = ArtifactCache(tmp_path)
    cache.store(_key("a"), list(range(100)))
    cache.store(_key("b"), list(range(100)))
    cache.store(_key("c"), list(range(100)))
    for path in cache.entries():
        true_utime(path, (1000, 1000))
    cache.load(_key("a"))  # refresh is a no-op at this granularity
    entry_size = cache.total_bytes() // 3
    cache.max_bytes = entry_size + 10  # keep exactly one entry
    removed = cache.evict()
    assert removed == 2
    (survivor,) = cache.entries()
    # Deterministic tiebreak: the lexicographically last name stays.
    expected = sorted(_key(stage) + ".pkl" for stage in "abc")[-1]
    assert survivor.name == expected


def test_corruption_heals_are_counted(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store(_key(), {"x": 1})
    (path,) = cache.entries()
    path.write_bytes(b"not a pickle")
    cache.load(_key())
    assert cache.stats.healed == 1
    assert cache.stats.misses == 1


def test_bytes_stored_accumulates_written_sizes(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store(_key("a"), list(range(50)))
    cache.store(_key("b"), list(range(50)))
    assert cache.stats.bytes_stored == cache.total_bytes()
    assert cache.stats.bytes_stored > 0
