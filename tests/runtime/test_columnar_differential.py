"""Differential digest suite: columnar kernels vs the legacy oracle.

The tentpole invariant of the columnar refactor (DESIGN.md §16) is that
kernel choice is *invisible* in the results: ``--legacy-kernels`` and
the vectorized path produce the same canonical digest for every
execution mode — serial, sharded, warm cache (in either direction,
since stage cache keys do not encode the kernel mode), REPAIR-degraded
bundles, and full paper-scale scenarios.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.faults.plan import FaultPlan
from repro.runtime import RuntimeConfig, results_digest, runner_for_bundle
from repro.runtime.stages import cacheable_stages
from repro.sim.io import load_bundle, write_world
from repro.util import colpack
from repro.util.ingest import IngestReport, ReadPolicy

pytestmark = [
    pytest.mark.runtime,
    pytest.mark.skipif(not colpack.HAVE_NUMPY,
                       reason="columnar kernels require numpy"),
]

#: Canonical digest of the paper scenario at scale 0.5, seed 2015 —
#: the number BENCH_runtime.json and the CI bench smoke job pin.
PAPER_HALF_SCALE_DIGEST = (
    "e3de573a12a2dacfff392c19b4c38512fe0c137ee65b54b1e0b0599606d2ee0c")


def run_digest(bundle, **config) -> str:
    runner = runner_for_bundle(bundle, RuntimeConfig(**config))
    return results_digest(runner.run())


@pytest.fixture(scope="module")
def legacy_digest(bundle):
    return run_digest(bundle, columnar=False)


class TestKernelModesAgree:
    def test_columnar_serial_matches_legacy(self, bundle, legacy_digest):
        assert run_digest(bundle, columnar=True) == legacy_digest

    def test_columnar_sharded_matches_legacy_serial(self, bundle,
                                                    legacy_digest):
        assert run_digest(bundle, columnar=True, jobs=2) == legacy_digest


class TestCrossModeCache:
    """Stage keys do not encode the kernel mode, so either mode can warm
    the other's cache — and must produce the same digest doing it."""

    def test_legacy_run_reads_columnar_cache(self, bundle, legacy_digest,
                                             tmp_path):
        cache_dir = tmp_path / "cache"
        cold = runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir))
        cold_results = cold.run()
        assert results_digest(cold_results) == legacy_digest
        # The fat artifacts really did go to columnar sidecars.
        sidecars = list(cache_dir.rglob("*.col"))
        assert sidecars, "columnar store wrote no .col sidecars"

        warm = runner_for_bundle(bundle, RuntimeConfig(
            columnar=False, cache_dir=cache_dir))
        warm_results = warm.run()
        assert results_digest(warm_results) == legacy_digest
        assert warm.cache.stats.misses == 0
        assert warm.report.cached_stages == [
            spec.name for spec in cacheable_stages()]

    def test_columnar_run_reads_legacy_cache(self, bundle, legacy_digest,
                                             tmp_path):
        cache_dir = tmp_path / "cache"
        runner_for_bundle(bundle, RuntimeConfig(
            columnar=False, cache_dir=cache_dir)).run()
        warm = runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir))
        assert results_digest(warm.run()) == legacy_digest
        assert warm.cache.stats.misses == 0

    def test_deleted_sidecar_heals_and_digest_survives(self, bundle,
                                                       legacy_digest,
                                                       tmp_path):
        cache_dir = tmp_path / "cache"
        runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir)).run()
        victim = next(iter(sorted(cache_dir.rglob("*.col"))))
        victim.unlink()

        warm = runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir))
        assert results_digest(warm.run()) == legacy_digest
        # The orphaned entry healed into a miss and was recomputed.
        assert warm.cache.stats.healed >= 1
        assert warm.cache.stats.misses >= 1

        # The re-store repaired the group: next run is fully warm.
        rewarm = runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir))
        assert results_digest(rewarm.run()) == legacy_digest
        assert rewarm.cache.stats.misses == 0

    def test_corrupt_sidecar_heals_like_missing(self, bundle, legacy_digest,
                                                tmp_path):
        cache_dir = tmp_path / "cache"
        runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir)).run()
        victim = next(iter(sorted(cache_dir.rglob("*.col"))))
        victim.write_bytes(b"RCOLgarbage")

        warm = runner_for_bundle(bundle, RuntimeConfig(
            columnar=True, cache_dir=cache_dir))
        assert results_digest(warm.run()) == legacy_digest
        assert warm.cache.stats.healed >= 1


class TestRepairedBundleDifferential:
    def test_kernels_agree_on_degraded_bundle(self, world, tmp_path):
        root = write_world(world, tmp_path / "degraded")
        FaultPlan.uniform(seed=13, rate=0.05).apply(root)
        report = IngestReport()
        bundle = load_bundle(root, policy=ReadPolicy.REPAIR, report=report)
        assert not report.clean  # faults were really injected
        legacy = run_digest(bundle, columnar=False)
        assert run_digest(bundle, columnar=True) == legacy
        assert run_digest(bundle, columnar=True, jobs=2) == legacy


@pytest.mark.slow
class TestPaperScaleDifferential:
    """Seeded paper-scenario worlds, both kernel modes, one digest.

    Scale 0.5 additionally pins the canonical digest the benchmark and
    the CI bench smoke job gate on.  Scale 2 (~770k connlog entries,
    minutes of wall time) only runs when ``REPRO_SLOW_SCALE2`` is set —
    it is the weekly-deep-check tier, not the per-commit one.
    """

    @staticmethod
    def _paper_bundle(scale, tmp_path):
        from repro.sim.scenario import paper_scenario
        from repro.sim.world import build_world
        world = build_world(paper_scenario(scale=scale, seed=2015))
        root = write_world(world, tmp_path / "bundle")
        try:
            return load_bundle(root)
        finally:
            del world

    def test_half_scale_digest_pinned_in_both_modes(self, tmp_path):
        bundle = self._paper_bundle(0.5, tmp_path)
        assert run_digest(bundle, columnar=True) == PAPER_HALF_SCALE_DIGEST
        assert run_digest(bundle, columnar=False) == PAPER_HALF_SCALE_DIGEST

    @pytest.mark.skipif(not os.environ.get("REPRO_SLOW_SCALE2"),
                        reason="set REPRO_SLOW_SCALE2=1 for the scale-2 "
                               "differential (several minutes)")
    def test_double_scale_modes_agree(self, tmp_path):
        bundle = self._paper_bundle(2, tmp_path)
        legacy = run_digest(bundle, columnar=False)
        assert run_digest(bundle, columnar=True) == legacy
        shutil.rmtree(tmp_path / "bundle", ignore_errors=True)
