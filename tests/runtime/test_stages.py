"""The stage graph's declarations are validated and honest."""

from __future__ import annotations

import pytest

from repro.runtime.stages import (
    PARAMETERS,
    SOURCE_ARTIFACTS,
    STAGES,
    StageSpec,
    render_graph,
    stage_by_name,
    topological_order,
    validate_graph,
)


def test_builtin_graph_is_valid():
    validate_graph()
    assert topological_order() == STAGES


def test_stage_names_match_pipeline_decomposition():
    assert [spec.name for spec in STAGES] == [
        "filter", "spans", "changes", "reboots", "gaps", "stats", "v3"]


def test_every_input_is_declared_somewhere():
    produced = {out for spec in STAGES for out in spec.outputs}
    for spec in STAGES:
        for name in spec.inputs:
            assert (name in SOURCE_ARTIFACTS or name in PARAMETERS
                    or name in produced)


def test_undefined_input_rejected():
    bogus = STAGES + (StageSpec("extra", ("nonexistent",), ("x",),
                                False, lambda v: v),)
    with pytest.raises(ValueError, match="not a dataset"):
        validate_graph(bogus)


def test_duplicate_output_rejected():
    bogus = STAGES + (StageSpec("extra", ("connlog",), ("filter_report",),
                                False, lambda v: v),)
    with pytest.raises(ValueError, match="already defined"):
        validate_graph(bogus)


def test_stage_by_name():
    assert stage_by_name("gaps").inputs == (
        "filter_report", "kroot", "filtered_reboots")
    with pytest.raises(KeyError, match="unknown stage"):
        stage_by_name("nope")


def test_render_graph_lists_every_stage():
    text = render_graph()
    for spec in STAGES:
        assert spec.name in text
        for artifact in spec.outputs:
            assert artifact in text
