"""Shared fixtures: one small world, simulated and written once."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import small_world
from repro.sim.io import load_bundle, write_world


@pytest.fixture(scope="session")
def world():
    """A compact simulated world (built once per session)."""
    return small_world(seed=11, days=40)


@pytest.fixture(scope="session")
def bundle_dir(world, tmp_path_factory):
    """The world written to disk as a dataset bundle."""
    return write_world(world, tmp_path_factory.mktemp("bundle"))


@pytest.fixture(scope="session")
def bundle(bundle_dir):
    """The bundle loaded back, fingerprint stamped."""
    return load_bundle(bundle_dir)
