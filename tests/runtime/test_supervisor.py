"""Supervised fault-tolerant execution suite.

The contract under test (DESIGN §13): a supervised ``jobs=N`` run under
injected worker crashes, hangs, corrupt result envelopes and slow shards
produces a results digest *bit-identical* to the unfaulted serial run;
when retries are exhausted the run still completes, with exact
``analyzed + quarantined == total`` accounting and a DEGRADED report;
and a killed run resumed with ``--resume`` restarts from the last
completed shard checkpoint and matches the uninterrupted digest.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injectors import FaultKind
from repro.faults.process import ProcessFaultPlan, reconcile
from repro.runtime import (
    RuntimeConfig,
    results_digest,
    runner_for_world,
)
from repro.runtime.supervisor import (
    SupervisionPolicy,
    partition_digest,
    payloads_in_order,
    resolve_envelopes,
)
from repro.runtime.workers import ShardResult

pytestmark = pytest.mark.runtime

#: Fast-retry knobs shared by the fault-matrix runs: enough retries that
#: transient faults always recover, no real backoff sleeps, and a
#: deadline short enough that injected hangs resolve in test time but
#: long enough that a loaded CI worker never trips it spuriously.
FAST = dict(jobs=2, max_retries=6, backoff_base_s=0.0)
HANG_DEADLINE_S = 3.0


@pytest.fixture(scope="module")
def serial_digest(world):
    return results_digest(
        runner_for_world(world, RuntimeConfig(jobs=1)).run())


def _faulted_run(world, plan, **overrides):
    options = dict(FAST)
    options.update(overrides)
    runner = runner_for_world(
        world, RuntimeConfig(fault_plan=plan, **options))
    results = runner.run()
    return runner, results


# -- fault matrix: recovery keeps the digest bit-identical -------------------

@pytest.mark.parametrize("kind,rate", [
    ("worker_crash", 0.2),
    ("worker_crash", 0.5),
    ("envelope_corrupt", 0.25),
    ("envelope_corrupt", 0.75),
    ("worker_slow", 0.3),
    ("worker_slow", 1.0),
])
def test_recovered_faults_keep_digest_identical(world, serial_digest,
                                                kind, rate):
    plan = ProcessFaultPlan(seed=13, slow_delay_s=0.01, **{kind: rate})
    runner, results = _faulted_run(world, plan)
    assert results_digest(results) == serial_digest
    assert not runner.report.degraded
    report = reconcile(plan, runner.report.resilience)
    assert report.reconciled
    assert report.total(report.abandoned) == 0


@pytest.mark.parametrize("rate", [0.2, 0.5])
def test_recovered_hangs_keep_digest_identical(world, serial_digest, rate):
    plan = ProcessFaultPlan(seed=17, worker_hang=rate)
    runner, results = _faulted_run(world, plan,
                                   shard_deadline_s=HANG_DEADLINE_S)
    assert results_digest(results) == serial_digest
    assert not runner.report.degraded
    report = reconcile(plan, runner.report.resilience)
    assert report.reconciled
    assert report.total(report.abandoned) == 0


def test_slow_workers_are_not_failures(world, serial_digest):
    plan = ProcessFaultPlan(seed=19, worker_slow=1.0, slow_delay_s=0.01)
    runner, results = _faulted_run(world, plan)
    assert results_digest(results) == serial_digest
    for row in runner.report.resilience:
        assert row.failures == ()
        assert row.retries == 0


def test_queued_shards_are_not_falsely_hung(world, serial_digest):
    """Only in-flight shards carry deadlines.  Eight slow shards over
    two workers run ~1.6s per worker chain — well past the 1.2s
    deadline — but each individual shard finishes comfortably inside
    it, so a deadline that measured time-in-queue (instead of
    execution) would falsely declare the tail shards hung."""
    plan = ProcessFaultPlan(seed=31, worker_slow=1.0, slow_delay_s=0.4)
    runner, results = _faulted_run(world, plan, shards=8,
                                   shard_deadline_s=1.2)
    assert results_digest(results) == serial_digest
    for row in runner.report.resilience:
        assert row.failures == ()
        assert row.retries == 0


def test_mixed_faults_keep_digest_identical(world, serial_digest):
    plan = ProcessFaultPlan(seed=23, worker_crash=0.25,
                            envelope_corrupt=0.25, worker_slow=0.25,
                            slow_delay_s=0.01)
    runner, results = _faulted_run(world, plan)
    assert results_digest(results) == serial_digest
    assert reconcile(plan, runner.report.resilience).reconciled


def test_pool_break_with_zero_retries_spares_unattributed_shards(world):
    """A multi-shard pool break cannot say which in-flight shard killed
    the worker, so even at --max-retries 0 an ambiguously-charged shard
    is not quarantined: it retries once in isolation and recovers.  Only
    a shard whose break was individually attributable (sole in-flight —
    necessarily one the plan actually crashed) may be abandoned."""
    plan = ProcessFaultPlan(seed=13, worker_crash=0.2)
    runner, _ = _faulted_run(world, plan, max_retries=0)
    report = reconcile(plan, runner.report.resilience)
    assert report.reconciled
    assert report.total(report.injected) > 0
    for row in runner.report.resilience:
        placed = plan.placements(row.stage, row.shards)
        for index in row.abandoned:
            assert placed.get(index) == FaultKind.WORKER_CRASH


def test_persistent_crash_quarantines_only_the_crashing_shards(world):
    """Blast-radius charging must never abandon an innocent co-in-flight
    shard: with zero retries and a *persistent* crasher, every abandoned
    shard is one the plan actually placed a crash on."""
    plan = ProcessFaultPlan(seed=13, worker_crash=0.2, persistent=True)
    runner, _ = _faulted_run(world, plan, max_retries=0)
    report = runner.report
    assert report.degraded
    assert reconcile(plan, report.resilience).reconciled
    for row in report.resilience:
        placed = plan.placements(row.stage, row.shards)
        for index in row.abandoned:
            assert placed.get(index) == FaultKind.WORKER_CRASH


# -- retries exhausted: graceful degradation, exact accounting ---------------

def test_persistent_corruption_degrades_with_exact_accounting(world):
    plan = ProcessFaultPlan(seed=5, envelope_corrupt=0.25, persistent=True)
    runner, results = _faulted_run(world, plan, max_retries=1)
    report = runner.report
    assert report.degraded
    for row in report.resilience:
        assert row.analyzed_items + row.quarantined_items == row.total_items
        for index in row.abandoned:
            assert all(failure.cause == "corrupt"
                       for failure in row.failures
                       if failure.shard_index == index)
    fault_report = reconcile(plan, report.resilience)
    assert fault_report.reconciled
    assert fault_report.total(fault_report.abandoned) == sum(
        len(row.abandoned) for row in report.resilience)
    rendered = report.render()
    assert "DEGRADED" in rendered
    assert "corrupt" in rendered
    # The run *completed*: quarantined probes are absent, not wrong.
    assert report.quarantined_probes
    (filter_row,) = [row for row in report.resilience
                     if row.stage == "filter"]
    verdicts = results.filter_report.verdicts
    assert len(verdicts) == filter_row.analyzed_items
    assert set(filter_row.quarantined_probes).isdisjoint(verdicts)


def test_exhausted_hangs_quarantine_without_retries(world):
    plan = ProcessFaultPlan(seed=29, worker_hang=1.0, persistent=True)
    runner, results = _faulted_run(world, plan, max_retries=0,
                                   shard_deadline_s=1.0)
    report = runner.report
    assert report.degraded
    for row in report.resilience:
        assert row.retries == 0
        assert len(row.abandoned) == row.shards
        assert row.analyzed_items == 0
        assert row.quarantined_items == row.total_items
    assert results.filter_report.verdicts == {}


def test_degraded_stage_artifact_is_not_cached(world, tmp_path):
    plan = ProcessFaultPlan(seed=5, envelope_corrupt=0.25, persistent=True)
    runner, _ = _faulted_run(world, plan, max_retries=0,
                             cache_dir=tmp_path / "cache")
    assert runner.report.degraded
    degraded = {row.stage for row in runner.report.resilience
                if row.degraded}
    # A clean warm run must recompute every degraded stage rather than
    # inherit its quarantine through the artifact cache.
    warm = runner_for_world(world, RuntimeConfig(
        jobs=1, cache_dir=tmp_path / "cache"))
    warm.run()
    assert degraded <= set(warm.report.computed_stages)


def test_stages_downstream_of_degradation_are_not_cached(
        world, serial_digest, tmp_path):
    """Degradation poisons everything computed after it: a stage fed a
    degraded artifact runs clean yet produces incomplete outputs, so
    neither its artifact nor its shard checkpoints may be stored under
    keys a non-degraded run would hit."""
    plan = ProcessFaultPlan(seed=5, envelope_corrupt=0.25, persistent=True)
    runner, _ = _faulted_run(world, plan, max_retries=0,
                             cache_dir=tmp_path / "cache")
    report = runner.report
    assert report.degraded
    order = [timing.name for timing in report.timings]
    first = min(order.index(row.stage) for row in report.resilience
                if row.degraded)
    for row in report.resilience:
        if order.index(row.stage) > first:
            assert row.checkpoints_stored == 0
    # The warm run may inherit only artifacts computed *before* the
    # first degradation, and must end bit-identical to a clean run.
    warm = runner_for_world(world, RuntimeConfig(
        jobs=1, cache_dir=tmp_path / "cache"))
    results = warm.run()
    assert set(warm.report.cached_stages) <= set(order[:first])
    assert results_digest(results) == serial_digest


def test_cacheless_runs_store_no_checkpoints(world):
    runner = runner_for_world(world, RuntimeConfig(jobs=2))
    runner.run()
    rows = runner.report.resilience
    assert rows
    assert all(row.checkpoints_stored == 0 for row in rows)
    assert all(row.checkpoints_loaded == 0 for row in rows)


# -- checkpoint / resume -----------------------------------------------------

class _KilledMidRun(KeyboardInterrupt):
    """Simulates the operator killing the driver process mid-stage."""


def _kill_after_stores(cache, limit: int):
    original = cache.store
    seen = {"count": 0}

    def store(key, value):
        original(key, value)
        seen["count"] += 1
        if seen["count"] >= limit:
            raise _KilledMidRun()

    cache.store = store


def test_resume_after_kill_matches_uninterrupted_digest(
        world, serial_digest, tmp_path):
    interrupted = runner_for_world(world, RuntimeConfig(
        jobs=2, cache_dir=tmp_path / "cache"))
    _kill_after_stores(interrupted.cache, 4)
    with pytest.raises(KeyboardInterrupt):
        interrupted.run()

    resumed = runner_for_world(world, RuntimeConfig(
        jobs=2, cache_dir=tmp_path / "cache", resume=True))
    results = resumed.run()
    assert results_digest(results) == serial_digest
    loaded = sum(row.checkpoints_loaded
                 for row in resumed.report.resilience)
    assert loaded > 0
    # Resumed shards are visible as cache hits, not recomputation.
    assert resumed.cache.stats.hits >= loaded


def test_resume_without_checkpoints_is_a_clean_cold_run(
        world, serial_digest, tmp_path):
    runner = runner_for_world(world, RuntimeConfig(
        jobs=2, cache_dir=tmp_path / "cache", resume=True))
    assert results_digest(runner.run()) == serial_digest
    assert all(row.checkpoints_loaded == 0
               for row in runner.report.resilience)


# -- policy knobs ------------------------------------------------------------

def test_backoff_is_deterministic_and_exponential():
    policy = SupervisionPolicy(backoff_base_s=0.05)
    assert policy.backoff_s(0) == 0.0
    assert policy.backoff_s(1) == pytest.approx(0.05)
    assert policy.backoff_s(2) == pytest.approx(0.10)
    assert policy.backoff_s(3) == pytest.approx(0.20)
    assert policy.backoff_s(999) == 60.0  # capped
    assert SupervisionPolicy(backoff_base_s=0.0).backoff_s(5) == 0.0


@pytest.mark.parametrize("kwargs", [
    {"max_retries": -1},
    {"shard_deadline_s": 0},
    {"backoff_base_s": -0.1},
])
def test_policy_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        SupervisionPolicy(**kwargs)


def test_runtime_config_rejects_fault_plan_without_supervision():
    with pytest.raises(ValueError):
        RuntimeConfig(jobs=2, supervise=False,
                      fault_plan=ProcessFaultPlan(seed=1))


def test_partition_digest_pins_the_cut():
    shards = [[1, 2], [3, 4], [5]]
    assert partition_digest("filter", shards) == partition_digest(
        "filter", [[9, 9], [9, 9], [9]])  # sizes, not contents
    assert partition_digest("filter", shards) != partition_digest(
        "spans", shards)
    assert partition_digest("filter", shards) != partition_digest(
        "filter", [[1, 2, 3], [4], [5]])


def test_pool_process_table_assumption():
    """``ShardSupervisor._teardown_pool`` SIGKILLs workers via the
    private ``ProcessPoolExecutor._processes`` table (guarded with
    getattr, the heartbeat spool being the primary pid source).  Pin
    the internal so an interpreter upgrade that drops or reshapes it
    fails here instead of silently weakening pool teardown."""
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        worker_pid = pool.submit(os.getpid).result(timeout=60)
        table = getattr(pool, "_processes", None)
        assert isinstance(table, dict)
        assert worker_pid in table
        assert all(isinstance(pid, int) for pid in table)
    finally:
        pool.shutdown()


# -- merge-order property ----------------------------------------------------

def _corrupted(envelope: ShardResult) -> ShardResult:
    blob = envelope.payload_pickle
    return ShardResult(
        shard_index=envelope.shard_index, attempt=envelope.attempt + 1,
        payload_pickle=blob[:-1] + bytes([blob[-1] ^ 0xFF]),
        seal=envelope.seal)


@settings(max_examples=50, deadline=None)
@given(data=st.data(),
       shard_count=st.integers(min_value=1, max_value=8))
def test_retry_order_never_perturbs_the_ordered_merge(data, shard_count):
    """Whatever order envelopes resolve in — including corrupt attempts
    interleaved from retries — the per-index payloads are identical."""
    good = [ShardResult.sealed({index: "payload-%d" % index},
                               shard_index=index)
            for index in range(shard_count)]
    corrupt = [
        _corrupted(good[index])
        for index in data.draw(st.lists(
            st.integers(min_value=0, max_value=shard_count - 1),
            max_size=2 * shard_count))
    ]
    arrival = data.draw(st.permutations(good + corrupt))
    resolved = resolve_envelopes(arrival)
    payloads = payloads_in_order(resolved, shard_count)
    assert payloads == [
        pickle.loads(envelope.payload_pickle) for envelope in good]
