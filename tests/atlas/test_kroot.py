"""Tests for repro.atlas.kroot."""

import pytest

from repro.atlas.kroot import HEALTHY_LTS, KRootDataset, KRootSeries
from repro.errors import DatasetError
from repro.util.intervals import Interval, IntervalSet


def make_series(power_off=(), network_down=(), start=0.0, end=86400.0,
                phase=0.0, probe=16893):
    return KRootSeries(
        probe, start, end,
        power_off=IntervalSet(Interval(a, b) for a, b in power_off),
        network_down=IntervalSet(Interval(a, b) for a, b in network_down),
        phase=phase,
    )


class TestConstruction:
    def test_rejects_empty_window(self):
        with pytest.raises(DatasetError):
            KRootSeries(1, 100.0, 100.0)

    def test_rejects_bad_cadence(self):
        with pytest.raises(DatasetError):
            KRootSeries(1, 0.0, 100.0, cadence=0.0)

    def test_default_phase_is_per_probe(self):
        a = KRootSeries(1, 0.0, 1000.0)
        b = KRootSeries(2, 0.0, 1000.0)
        assert a.phase != b.phase
        assert 0 <= a.phase < a.cadence


class TestHealthyRecords:
    def test_cadence_and_success(self):
        series = make_series(end=2400.0)
        records = series.records(0.0, 2400.0)
        assert len(records) == 10
        assert all(r.success == 3 and r.sent == 3 for r in records)
        assert all(r.lts == HEALTHY_LTS for r in records)
        assert records[1].timestamp - records[0].timestamp == 240.0

    def test_window_clipping(self):
        series = make_series(end=86400.0)
        records = series.records(1000.0, 2000.0)
        assert all(1000.0 <= r.timestamp < 2000.0 for r in records)
        assert len(records) == 4  # ticks at 1200, 1440, 1680, 1920

    def test_empty_window(self):
        series = make_series()
        assert series.records(500.0, 500.0) == []
        assert series.records(90000.0, 95000.0) == []


class TestNetworkOutage:
    def test_pings_lost_and_lts_grows(self):
        series = make_series(network_down=[(1000.0, 2000.0)], end=4000.0)
        records = series.records(0.0, 4000.0)
        lost = [r for r in records if r.all_lost]
        assert [r.timestamp for r in lost] == [1200.0, 1440.0, 1680.0, 1920.0]
        lts_values = [r.lts for r in lost]
        assert lts_values == sorted(lts_values)
        assert lts_values[0] == HEALTHY_LTS + 200.0
        # Recovery: next record is healthy again.
        after = [r for r in records if r.timestamp >= 2000.0]
        assert all(not r.all_lost and r.lts == HEALTHY_LTS for r in after)


class TestPowerOutage:
    def test_records_missing_while_off(self):
        series = make_series(power_off=[(1000.0, 2000.0)], end=4000.0)
        records = series.records(0.0, 4000.0)
        stamps = [r.timestamp for r in records]
        assert all(not 1000.0 <= t < 2000.0 for t in stamps)
        assert all(not r.all_lost for r in records)

    def test_power_takes_precedence_over_network(self):
        series = make_series(power_off=[(1000.0, 2000.0)],
                             network_down=[(900.0, 2100.0)], end=4000.0)
        records = series.records(0.0, 4000.0)
        in_power_window = [r for r in records if 1000.0 <= r.timestamp < 2000.0]
        assert in_power_window == []


class TestPingGapAround:
    def test_gap_brackets_power_outage(self):
        series = make_series(power_off=[(1000.0, 2000.0)], end=4000.0)
        previous, following = series.ping_gap_around(1500.0)
        assert previous == 960.0
        assert following == 2160.0

    def test_healthy_gap_is_one_cadence(self):
        series = make_series(end=4000.0)
        previous, following = series.ping_gap_around(1300.0)
        assert previous == 1200.0
        assert following == 1440.0

    def test_edges_return_none(self):
        series = make_series(start=0.0, end=1000.0,
                             power_off=[(0.0, 1000.0)])
        previous, following = series.ping_gap_around(500.0)
        assert previous is None
        assert following is None


class TestIterAllRecords:
    def test_matches_windowed_query(self):
        series = make_series(network_down=[(500.0, 700.0)], end=2400.0)
        assert list(series.iter_all_records()) == series.records(0.0, 2400.0)


class TestKRootDataset:
    def test_add_and_query(self):
        dataset = KRootDataset()
        dataset.add_series(make_series(probe=5, end=1000.0))
        assert dataset.probe_ids() == [5]
        assert dataset.has_probe(5)
        assert len(dataset.records(5, 0.0, 1000.0)) == 5

    def test_duplicate_rejected(self):
        dataset = KRootDataset()
        dataset.add_series(make_series(probe=5, end=1000.0))
        with pytest.raises(DatasetError):
            dataset.add_series(make_series(probe=5, end=1000.0))

    def test_missing_probe_rejected(self):
        with pytest.raises(DatasetError):
            KRootDataset().series(42)
