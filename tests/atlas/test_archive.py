"""Tests for repro.atlas.archive."""

import pytest

from repro.atlas.archive import (
    COUNTRY_TO_CONTINENT,
    ProbeArchive,
    continent_of,
)
from repro.atlas.types import ProbeMeta, ProbeVersion
from repro.errors import DatasetError


class TestContinentMapping:
    def test_known_countries(self):
        assert continent_of("DE") == "EU"
        assert continent_of("US") == "NA"
        assert continent_of("UY") == "SA"
        assert continent_of("MU") == "AF"
        assert continent_of("KZ") == "AS"
        assert continent_of("AU") == "OC"

    def test_unknown_country_rejected(self):
        with pytest.raises(DatasetError):
            continent_of("XX")

    def test_all_mapped_continents_valid(self):
        assert set(COUNTRY_TO_CONTINENT.values()) == {
            "EU", "NA", "AS", "AF", "SA", "OC"}


class TestProbeArchive:
    def make_archive(self):
        return ProbeArchive([
            ProbeMeta(1, "DE", "EU", ProbeVersion.V3),
            ProbeMeta(2, "DE", "EU", ProbeVersion.V1),
            ProbeMeta(3, "US", "NA", ProbeVersion.V3, ("multihomed",)),
        ])

    def test_lookup(self):
        archive = self.make_archive()
        assert archive.get(1).country == "DE"
        assert archive.has_probe(3)
        assert not archive.has_probe(99)
        with pytest.raises(DatasetError):
            archive.get(99)

    def test_duplicate_rejected(self):
        archive = self.make_archive()
        with pytest.raises(DatasetError):
            archive.add(ProbeMeta(1, "FR", "EU"))

    def test_bad_continent_rejected(self):
        with pytest.raises(DatasetError):
            ProbeArchive([ProbeMeta(9, "DE", "XX")])

    def test_counts(self):
        archive = self.make_archive()
        assert archive.count_by_country()["DE"] == 2
        assert archive.count_by_continent()["EU"] == 2
        assert archive.count_by_version()[ProbeVersion.V3] == 2

    def test_probes_with_version(self):
        archive = self.make_archive()
        assert archive.probes_with_version(ProbeVersion.V3) == [1, 3]

    def test_iteration_sorted(self):
        archive = self.make_archive()
        assert [m.probe_id for m in archive] == [1, 2, 3]
        assert len(archive) == 3
