"""Tests for repro.atlas.connlog."""

import io

import pytest

from repro.atlas.connlog import ConnectionLog
from repro.atlas.types import ConnectionLogEntry
from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address
from repro.util import timeutil
from repro.util.ingest import IngestReport, ReadPolicy


def v4(probe, start, end, text):
    return ConnectionLogEntry(probe, start, end, IPv4Address.parse(text))


class TestConnectionLog:
    def test_add_and_query(self):
        log = ConnectionLog()
        log.add(v4(206, 0.0, 100.0, "91.55.174.103"))
        log.add(v4(206, 150.0, 300.0, "91.55.169.37"))
        log.add(v4(207, 0.0, 50.0, "10.0.0.1"))
        assert log.probe_ids() == [206, 207]
        assert len(log.entries(206)) == 2
        assert log.entry_count() == 3
        assert log.entries(999) == []

    def test_rejects_overlapping_entries(self):
        log = ConnectionLog()
        log.add(v4(206, 0.0, 100.0, "91.55.174.103"))
        with pytest.raises(DatasetError):
            log.add(v4(206, 99.0, 200.0, "91.55.169.37"))

    def test_touching_entries_allowed(self):
        log = ConnectionLog()
        log.add(v4(206, 0.0, 100.0, "91.55.174.103"))
        log.add(v4(206, 100.0, 200.0, "91.55.169.37"))
        assert log.entry_count() == 2

    def test_total_connected_time(self):
        log = ConnectionLog([
            v4(206, 0.0, 100.0, "91.55.174.103"),
            v4(206, 150.0, 250.0, "91.55.169.37"),
        ])
        assert log.total_connected_time(206) == 200.0
        assert log.total_connected_time(999) == 0.0

    def test_iteration_orders_by_probe_then_time(self):
        log = ConnectionLog([
            v4(300, 0.0, 10.0, "10.0.0.1"),
            v4(100, 0.0, 10.0, "10.0.0.2"),
            v4(100, 20.0, 30.0, "10.0.0.3"),
        ])
        assert [e.probe_id for e in log] == [100, 100, 300]


class TestSerialization:
    def test_roundtrip_mixed_families(self):
        log = ConnectionLog([
            v4(206, 0.0, 100.0, "91.55.174.103"),
            ConnectionLogEntry(206, 150.0, 300.0, None,
                               ipv6_address="2001:db8::1"),
        ])
        buffer = io.StringIO()
        log.write(buffer)
        parsed = ConnectionLog.read(io.StringIO(buffer.getvalue()))
        entries = parsed.entries(206)
        assert len(entries) == 2
        assert str(entries[0].address) == "91.55.174.103"
        assert entries[1].ipv6_address == "2001:db8::1"

    def test_read_skips_comments(self):
        text = "# probes\n206\t0\t100\t91.55.174.103\n"
        assert ConnectionLog.read(io.StringIO(text)).entry_count() == 1

    @pytest.mark.parametrize("line", [
        "206\t0\t100",                       # too few fields
        "206\t0\t100\t1.2.3.4\tmore",        # too many
        "x\t0\t100\t1.2.3.4",                # bad id
        "206\tx\t100\t1.2.3.4",              # bad start
        "206\t0\t100\tnot-an-address",       # bad address
    ])
    def test_read_rejects_malformed(self, line):
        with pytest.raises(ParseError):
            ConnectionLog.read(io.StringIO(line + "\n"))


class TestStrictDiagnostics:
    def test_malformed_line_names_source_and_line(self):
        text = "206\t0\t100\t1.2.3.4\njunk\n"
        with pytest.raises(ParseError, match=r"log\.tsv: line 2:"):
            ConnectionLog.read(io.StringIO(text), source="log.tsv")

    def test_source_defaults_to_placeholder(self):
        with pytest.raises(ParseError, match=r"<connlog>: line 1:"):
            ConnectionLog.read(io.StringIO("junk\n"))

    def test_out_of_order_names_source_and_line(self):
        text = ("206\t100\t200\t1.2.3.4\n"
                "206\t0\t50\t1.2.3.5\n")
        with pytest.raises(DatasetError, match=r"log\.tsv: line 2:"):
            ConnectionLog.read(io.StringIO(text), source="log.tsv")

    def test_strict_fills_report_on_success(self):
        report = IngestReport()
        ConnectionLog.read(io.StringIO("206\t0\t100\t1.2.3.4\n"),
                           report=report)
        assert report.dataset("connlog").parsed == 1
        assert report.clean


class TestRepairRead:
    TEXT = ("206\t0\t100\t1.2.3.4\n"
            "garbage line\n"
            "206\t250\t300\t1.2.3.6\n"     # out of order with next
            "206\t150\t200\t1.2.3.5\n"
            "206\t150\t200\t1.2.3.5\n"     # duplicate -> overlap
            "207\t0\t100\t10.0.0.1\n")

    def read(self):
        report = IngestReport()
        log = ConnectionLog.read(io.StringIO(self.TEXT),
                                 policy=ReadPolicy.REPAIR,
                                 report=report, source="log.tsv")
        return log, report

    def test_quarantines_garbage_and_duplicates(self):
        log, report = self.read()
        assert log.entry_count() == 4
        assert report.dataset("connlog").quarantined == 2

    def test_resorts_out_of_order_entries(self):
        log, report = self.read()
        assert [e.start for e in log.entries(206)] == [0.0, 150.0, 250.0]
        assert report.dataset("connlog").repaired == 2

    def test_accounting_balances(self):
        _, report = self.read()
        # 6 record lines presented: parsed + repaired + quarantined.
        assert report.dataset("connlog").total == 6

    def test_repair_on_clean_input_is_clean(self):
        report = IngestReport()
        log = ConnectionLog.read(
            io.StringIO("206\t0\t100\t1.2.3.4\n206\t100\t200\t1.2.3.5\n"),
            policy=ReadPolicy.REPAIR, report=report)
        assert log.entry_count() == 2
        assert report.clean


class TestPaperStyleRendering:
    def test_table1_style(self):
        start = timeutil.epoch(2015, 1, 1, 3, 22, 16)
        end = timeutil.epoch(2015, 1, 1, 17, 34, 11)
        log = ConnectionLog([v4(206, start, end, "91.55.169.37")])
        text = log.render_paper_style(206)
        lines = text.splitlines()
        assert lines[0].startswith("ID")
        assert "Jan  1 03:22:16" in lines[1]
        assert "91.55.169.37" in lines[1]

    def test_limit(self):
        log = ConnectionLog([
            v4(206, 0.0, 10.0, "10.0.0.1"),
            v4(206, 20.0, 30.0, "10.0.0.2"),
        ])
        assert len(log.render_paper_style(206, limit=1).splitlines()) == 2
