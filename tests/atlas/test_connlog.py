"""Tests for repro.atlas.connlog."""

import io

import pytest

from repro.atlas.connlog import ConnectionLog
from repro.atlas.types import ConnectionLogEntry
from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address
from repro.util import timeutil


def v4(probe, start, end, text):
    return ConnectionLogEntry(probe, start, end, IPv4Address.parse(text))


class TestConnectionLog:
    def test_add_and_query(self):
        log = ConnectionLog()
        log.add(v4(206, 0.0, 100.0, "91.55.174.103"))
        log.add(v4(206, 150.0, 300.0, "91.55.169.37"))
        log.add(v4(207, 0.0, 50.0, "10.0.0.1"))
        assert log.probe_ids() == [206, 207]
        assert len(log.entries(206)) == 2
        assert log.entry_count() == 3
        assert log.entries(999) == []

    def test_rejects_overlapping_entries(self):
        log = ConnectionLog()
        log.add(v4(206, 0.0, 100.0, "91.55.174.103"))
        with pytest.raises(DatasetError):
            log.add(v4(206, 99.0, 200.0, "91.55.169.37"))

    def test_touching_entries_allowed(self):
        log = ConnectionLog()
        log.add(v4(206, 0.0, 100.0, "91.55.174.103"))
        log.add(v4(206, 100.0, 200.0, "91.55.169.37"))
        assert log.entry_count() == 2

    def test_total_connected_time(self):
        log = ConnectionLog([
            v4(206, 0.0, 100.0, "91.55.174.103"),
            v4(206, 150.0, 250.0, "91.55.169.37"),
        ])
        assert log.total_connected_time(206) == 200.0
        assert log.total_connected_time(999) == 0.0

    def test_iteration_orders_by_probe_then_time(self):
        log = ConnectionLog([
            v4(300, 0.0, 10.0, "10.0.0.1"),
            v4(100, 0.0, 10.0, "10.0.0.2"),
            v4(100, 20.0, 30.0, "10.0.0.3"),
        ])
        assert [e.probe_id for e in log] == [100, 100, 300]


class TestSerialization:
    def test_roundtrip_mixed_families(self):
        log = ConnectionLog([
            v4(206, 0.0, 100.0, "91.55.174.103"),
            ConnectionLogEntry(206, 150.0, 300.0, None,
                               ipv6_address="2001:db8::1"),
        ])
        buffer = io.StringIO()
        log.write(buffer)
        parsed = ConnectionLog.read(io.StringIO(buffer.getvalue()))
        entries = parsed.entries(206)
        assert len(entries) == 2
        assert str(entries[0].address) == "91.55.174.103"
        assert entries[1].ipv6_address == "2001:db8::1"

    def test_read_skips_comments(self):
        text = "# probes\n206\t0\t100\t91.55.174.103\n"
        assert ConnectionLog.read(io.StringIO(text)).entry_count() == 1

    @pytest.mark.parametrize("line", [
        "206\t0\t100",                       # too few fields
        "206\t0\t100\t1.2.3.4\tmore",        # too many
        "x\t0\t100\t1.2.3.4",                # bad id
        "206\tx\t100\t1.2.3.4",              # bad start
        "206\t0\t100\tnot-an-address",       # bad address
    ])
    def test_read_rejects_malformed(self, line):
        with pytest.raises(ParseError):
            ConnectionLog.read(io.StringIO(line + "\n"))


class TestPaperStyleRendering:
    def test_table1_style(self):
        start = timeutil.epoch(2015, 1, 1, 3, 22, 16)
        end = timeutil.epoch(2015, 1, 1, 17, 34, 11)
        log = ConnectionLog([v4(206, start, end, "91.55.169.37")])
        text = log.render_paper_style(206)
        lines = text.splitlines()
        assert lines[0].startswith("ID")
        assert "Jan  1 03:22:16" in lines[1]
        assert "91.55.169.37" in lines[1]

    def test_limit(self):
        log = ConnectionLog([
            v4(206, 0.0, 10.0, "10.0.0.1"),
            v4(206, 20.0, 30.0, "10.0.0.2"),
        ])
        assert len(log.render_paper_style(206, limit=1).splitlines()) == 2
