"""Tests for repro.atlas.sosuptime."""

import io

import pytest

from repro.atlas.sosuptime import UPTIME_WRAP_MODULUS, UptimeDataset
from repro.atlas.types import UptimeRecord
from repro.errors import DatasetError, ParseError
from repro.util.ingest import IngestReport, ReadPolicy


class TestUptimeDataset:
    def test_add_and_query(self):
        dataset = UptimeDataset([
            UptimeRecord(206, 1000.0, 500.0),
            UptimeRecord(206, 2000.0, 19.0),
            UptimeRecord(207, 50.0, 10.0),
        ])
        assert dataset.probe_ids() == [206, 207]
        assert len(dataset.records(206)) == 2
        assert dataset.records(999) == []

    def test_out_of_order_rejected(self):
        dataset = UptimeDataset([UptimeRecord(206, 1000.0, 500.0)])
        with pytest.raises(DatasetError):
            dataset.add(UptimeRecord(206, 900.0, 100.0))

    def test_records_in_window(self):
        dataset = UptimeDataset([
            UptimeRecord(206, 100.0, 1.0),
            UptimeRecord(206, 200.0, 1.0),
            UptimeRecord(206, 300.0, 1.0),
        ])
        found = dataset.records_in(206, 150.0, 300.0)
        assert [r.timestamp for r in found] == [200.0]
        assert dataset.records_in(206, 200.0, 201.0)[0].timestamp == 200.0

    def test_roundtrip(self):
        dataset = UptimeDataset([
            UptimeRecord(206, 1000.0, 262531.0),
            UptimeRecord(206, 2000.0, 19.0),
        ])
        buffer = io.StringIO()
        dataset.write(buffer)
        parsed = UptimeDataset.read(io.StringIO(buffer.getvalue()))
        assert [r.uptime for r in parsed.records(206)] == [262531.0, 19.0]

    @pytest.mark.parametrize("line", [
        "206\t100",                # too few
        "206\t100\t5\textra",      # too many
        "x\t100\t5",               # bad id
        "206\tx\t5",               # bad timestamp
        "206\t100\tx",             # bad uptime
    ])
    def test_read_rejects_malformed(self, line):
        with pytest.raises(ParseError):
            UptimeDataset.read(io.StringIO(line + "\n"))

    def test_read_skips_comments(self):
        text = "# header\n\n206\t100\t5\n"
        assert len(UptimeDataset.read(io.StringIO(text)).records(206)) == 1


class TestStrictDiagnostics:
    def test_malformed_line_names_source_and_line(self):
        text = "206\t100\t5\n206\tx\t5\n"
        with pytest.raises(ParseError, match=r"up\.tsv: line 2:"):
            UptimeDataset.read(io.StringIO(text), source="up.tsv")

    def test_wrapped_counter_rejected(self):
        wrapped = "206\t100\t%.0f\n" % (UPTIME_WRAP_MODULUS + 5)
        with pytest.raises(ParseError, match=r"line 1: .*32-bit wrap"):
            UptimeDataset.read(io.StringIO(wrapped))

    def test_out_of_order_names_source_and_line(self):
        text = "206\t1000\t5\n206\t900\t5\n"
        with pytest.raises(DatasetError, match=r"up\.tsv: line 2:"):
            UptimeDataset.read(io.StringIO(text), source="up.tsv")


class TestRepairRead:
    def test_unwraps_counter_modulo_2_32(self):
        wrapped = "206\t100\t%.0f\n" % (UPTIME_WRAP_MODULUS + 42)
        report = IngestReport()
        dataset = UptimeDataset.read(io.StringIO(wrapped),
                                     policy=ReadPolicy.REPAIR,
                                     report=report)
        assert dataset.records(206)[0].uptime == 42.0
        assert report.dataset("uptime").repaired == 1

    def test_quarantines_garbage_and_resorts(self):
        text = ("206\t1000\t5\n"
                "206\tgarbage\tX\n"
                "206\t3000\t5\n"
                "206\t2000\t5\n")
        report = IngestReport()
        dataset = UptimeDataset.read(io.StringIO(text),
                                     policy=ReadPolicy.REPAIR,
                                     report=report, source="up.tsv")
        assert [r.timestamp for r in dataset.records(206)] \
            == [1000.0, 2000.0, 3000.0]
        ingest = report.dataset("uptime")
        assert ingest.quarantined == 1
        assert ingest.repaired == 2
        assert ingest.total == 4

    def test_repair_on_clean_input_is_clean(self):
        report = IngestReport()
        dataset = UptimeDataset.read(io.StringIO("206\t100\t5\n"),
                                     policy=ReadPolicy.REPAIR,
                                     report=report)
        assert len(dataset.records(206)) == 1
        assert report.clean
