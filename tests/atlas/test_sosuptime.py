"""Tests for repro.atlas.sosuptime."""

import io

import pytest

from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import UptimeRecord
from repro.errors import DatasetError, ParseError


class TestUptimeDataset:
    def test_add_and_query(self):
        dataset = UptimeDataset([
            UptimeRecord(206, 1000.0, 500.0),
            UptimeRecord(206, 2000.0, 19.0),
            UptimeRecord(207, 50.0, 10.0),
        ])
        assert dataset.probe_ids() == [206, 207]
        assert len(dataset.records(206)) == 2
        assert dataset.records(999) == []

    def test_out_of_order_rejected(self):
        dataset = UptimeDataset([UptimeRecord(206, 1000.0, 500.0)])
        with pytest.raises(DatasetError):
            dataset.add(UptimeRecord(206, 900.0, 100.0))

    def test_records_in_window(self):
        dataset = UptimeDataset([
            UptimeRecord(206, 100.0, 1.0),
            UptimeRecord(206, 200.0, 1.0),
            UptimeRecord(206, 300.0, 1.0),
        ])
        found = dataset.records_in(206, 150.0, 300.0)
        assert [r.timestamp for r in found] == [200.0]
        assert dataset.records_in(206, 200.0, 201.0)[0].timestamp == 200.0

    def test_roundtrip(self):
        dataset = UptimeDataset([
            UptimeRecord(206, 1000.0, 262531.0),
            UptimeRecord(206, 2000.0, 19.0),
        ])
        buffer = io.StringIO()
        dataset.write(buffer)
        parsed = UptimeDataset.read(io.StringIO(buffer.getvalue()))
        assert [r.uptime for r in parsed.records(206)] == [262531.0, 19.0]

    @pytest.mark.parametrize("line", [
        "206\t100",                # too few
        "206\t100\t5\textra",      # too many
        "x\t100\t5",               # bad id
        "206\tx\t5",               # bad timestamp
        "206\t100\tx",             # bad uptime
    ])
    def test_read_rejects_malformed(self, line):
        with pytest.raises(ParseError):
            UptimeDataset.read(io.StringIO(line + "\n"))

    def test_read_skips_comments(self):
        text = "# header\n\n206\t100\t5\n"
        assert len(UptimeDataset.read(io.StringIO(text)).records(206)) == 1
