"""Tests for repro.atlas.api."""

import pytest

from repro.atlas.api import (
    AtlasApi,
    parse_history_page,
    scrape_connection_log,
    scrape_probe_ids,
)
from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.types import ConnectionLogEntry, ProbeMeta
from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address
from repro.util import timeutil

T_JAN = timeutil.epoch(2015, 1, 10)
T_FEB = timeutil.epoch(2015, 2, 10)


def make_api(probe_count=5):
    archive = ProbeArchive(
        ProbeMeta(pid, "DE", "EU") for pid in range(1, probe_count + 1))
    log = ConnectionLog()
    for pid in range(1, probe_count + 1):
        log.add(ConnectionLogEntry(pid, T_JAN, T_JAN + 3600,
                                   IPv4Address.parse("11.0.0.%d" % pid)))
        log.add(ConnectionLogEntry(pid, T_FEB, T_FEB + 3600,
                                   IPv4Address.parse("11.0.1.%d" % pid)))
    return AtlasApi(archive, log), archive, log


class TestProbeArchivePagination:
    def test_single_page(self):
        api, _, _ = make_api(3)
        payload = api.probe_archive_page(1, page_size=10)
        assert payload["count"] == 3
        assert payload["next"] is None
        assert [r["id"] for r in payload["results"]] == [1, 2, 3]
        assert payload["results"][0]["country_code"] == "DE"

    def test_multi_page_walk(self):
        api, _, _ = make_api(5)
        assert scrape_probe_ids(api, page_size=2) == [1, 2, 3, 4, 5]

    def test_bad_page_rejected(self):
        api, _, _ = make_api(1)
        with pytest.raises(DatasetError):
            api.probe_archive_page(0)


class TestConnectionHistory:
    def test_month_selection(self):
        api, _, _ = make_api(1)
        january = api.connection_history(1, 2015, 1)
        february = api.connection_history(1, 2015, 2)
        march = api.connection_history(1, 2015, 3)
        assert "11.0.0.1" in january
        assert "11.0.1.1" in february
        assert march == ""

    def test_unknown_probe_rejected(self):
        api, _, _ = make_api(1)
        with pytest.raises(DatasetError):
            api.connection_history(99, 2015, 1)

    def test_bad_month_rejected(self):
        api, _, _ = make_api(1)
        with pytest.raises(DatasetError):
            api.connection_history(1, 2015, 13)


class TestHistoryParsing:
    def test_parse_v4_and_v6(self):
        text = "100\t200\t11.0.0.1\n300\t400\t2001:db8::1\n"
        entries = parse_history_page(7, text)
        assert len(entries) == 2
        assert not entries[0].is_ipv6
        assert entries[1].is_ipv6

    @pytest.mark.parametrize("line", [
        "100\t200",             # too few fields
        "x\t200\t11.0.0.1",     # bad timestamp
        "100\t200\tnot-an-ip",  # bad address
    ])
    def test_malformed_rejected(self, line):
        with pytest.raises(ParseError):
            parse_history_page(7, line)

    def test_blank_lines_skipped(self):
        assert parse_history_page(7, "\n\n") == []


class TestScrape:
    def test_scraped_log_matches_original(self):
        api, _, original = make_api(4)
        probe_ids = scrape_probe_ids(api)
        scraped = scrape_connection_log(
            api, probe_ids, timeutil.YEAR_2015_START,
            timeutil.epoch(2015, 4, 1))
        assert scraped.entry_count() == original.entry_count()
        for pid in probe_ids:
            got = [(e.start, e.end, str(e.address))
                   for e in scraped.entries(pid)]
            want = [(e.start, e.end, str(e.address))
                    for e in original.entries(pid)]
            assert got == want
