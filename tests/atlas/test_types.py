"""Tests for repro.atlas.types."""

import pytest

from repro.atlas.types import (
    ConnectionLogEntry,
    KRootPingRecord,
    ProbeMeta,
    ProbeVersion,
    UptimeRecord,
)
from repro.errors import ParseError
from repro.net.ipv4 import IPv4Address

ADDR = IPv4Address.parse("91.55.174.103")


class TestConnectionLogEntry:
    def test_valid_ipv4(self):
        entry = ConnectionLogEntry(206, 0.0, 100.0, ADDR)
        assert not entry.is_ipv6
        assert entry.duration == 100.0

    def test_valid_ipv6(self):
        entry = ConnectionLogEntry(206, 0.0, 100.0, None,
                                   ipv6_address="2001:db8::1")
        assert entry.is_ipv6

    def test_rejects_end_before_start(self):
        with pytest.raises(ParseError):
            ConnectionLogEntry(206, 100.0, 50.0, ADDR)

    def test_rejects_both_or_neither_address(self):
        with pytest.raises(ParseError):
            ConnectionLogEntry(206, 0.0, 1.0, ADDR, ipv6_address="2001:db8::1")
        with pytest.raises(ParseError):
            ConnectionLogEntry(206, 0.0, 1.0, None)


class TestKRootPingRecord:
    def test_all_lost(self):
        assert KRootPingRecord(1, 0.0, 3, 0, 100.0).all_lost
        assert not KRootPingRecord(1, 0.0, 3, 1, 100.0).all_lost
        assert not KRootPingRecord(1, 0.0, 0, 0, 100.0).all_lost

    def test_validation(self):
        with pytest.raises(ParseError):
            KRootPingRecord(1, 0.0, 3, 4, 100.0)
        with pytest.raises(ParseError):
            KRootPingRecord(1, 0.0, 3, -1, 100.0)
        with pytest.raises(ParseError):
            KRootPingRecord(1, 0.0, 3, 3, -1.0)


class TestUptimeRecord:
    def test_boot_time(self):
        record = UptimeRecord(206, 1000.0, 19.0)
        assert record.boot_time == 981.0

    def test_rejects_negative_uptime(self):
        with pytest.raises(ParseError):
            UptimeRecord(206, 1000.0, -1.0)


class TestProbeMeta:
    def test_valid(self):
        meta = ProbeMeta(1, "DE", "EU", ProbeVersion.V3, ("system-v3",))
        assert not meta.has_filtered_tag

    def test_filtered_tags(self):
        assert ProbeMeta(1, "DE", "EU", tags=("multihomed",)).has_filtered_tag
        assert ProbeMeta(1, "DE", "EU", tags=("datacentre",)).has_filtered_tag
        assert ProbeMeta(1, "DE", "EU", tags=("core", "x")).has_filtered_tag

    def test_rejects_bad_country(self):
        with pytest.raises(ParseError):
            ProbeMeta(1, "Germany", "EU")
        with pytest.raises(ParseError):
            ProbeMeta(1, "de", "EU")
