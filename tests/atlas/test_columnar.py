"""Tests for repro.atlas.columnar: CSR views of the hot Atlas datasets.

The views are derived from the record containers, so the suite checks
the DESIGN.md §16 invariants (sorted probe rows, CSR offsets, v6 flag
with a zero address placeholder), the lazily derived columns
(durations, run starts) against hand-computed values, and the colpack
round-trip both views register for.
"""

from __future__ import annotations

import pytest

from repro.atlas.connlog import ConnectionLog
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import ConnectionLogEntry, UptimeRecord
from repro.net.ipv4 import IPv4Address
from repro.util import colpack

pytestmark = pytest.mark.skipif(not colpack.HAVE_NUMPY,
                                reason="columnar views require numpy")

if colpack.HAVE_NUMPY:
    import numpy as np

    from repro.atlas.columnar import ColumnarConnlog, ColumnarUptime


def v4(probe, start, end, text):
    return ConnectionLogEntry(probe, start, end, IPv4Address.parse(text))


def v6(probe, start, end, text="2001:db8::1"):
    return ConnectionLogEntry(probe, start, end, None, ipv6_address=text)


@pytest.fixture
def connlog():
    # Probe 9 added first: the view must still order rows by probe id.
    return ConnectionLog([
        v4(9, 0.0, 10.0, "10.0.0.1"),
        v4(3, 0.0, 5.0, "10.0.1.1"),
        v4(3, 5.0, 9.0, "10.0.1.1"),     # same address: not a run start
        v4(3, 12.0, 20.0, "10.0.1.2"),   # new address: a run start
        v6(7, 1.0, 4.0),
        v4(7, 4.0, 6.0, "10.0.2.1"),
    ])


class TestColumnarConnlog:
    def test_rows_sorted_and_offsets_csr(self, connlog):
        col = ColumnarConnlog.from_connlog(connlog)
        assert col.probe_ids.tolist() == [3, 7, 9]
        assert col.offsets.tolist() == [0, 3, 5, 6]
        assert col.entry_count == connlog.entry_count() == 6
        assert len(col) == 3

    def test_slices_match_record_entries(self, connlog):
        col = ColumnarConnlog.from_connlog(connlog)
        for pid in connlog.probe_ids():
            lo, hi = col.slice_of(pid)
            entries = connlog.entries(pid)
            assert col.starts[lo:hi].tolist() == [e.start for e in entries]
            assert col.ends[lo:hi].tolist() == [e.end for e in entries]
        assert col.has_probe(3) and not col.has_probe(999)

    def test_v6_rows_flagged_with_zero_address(self, connlog):
        col = ColumnarConnlog.from_connlog(connlog)
        lo, hi = col.slice_of(7)
        assert col.v6[lo:hi].tolist() == [1, 0]
        assert col.addrs[lo].item() == 0
        assert col.addrs[lo + 1].item() == IPv4Address.parse("10.0.2.1").value

    def test_durations_match_scalar_subtraction(self, connlog):
        col = ColumnarConnlog.from_connlog(connlog)
        expected = [e.end - e.start
                    for pid in connlog.probe_ids()
                    for e in connlog.entries(pid)]
        assert col.durations().tolist() == expected
        assert col.durations_list() == expected
        assert all(isinstance(v, float) for v in col.durations_list())

    def test_run_starts_first_entry_and_address_changes(self, connlog):
        col = ColumnarConnlog.from_connlog(connlog)
        # probe 3: first entry, repeat address, new address
        # probe 7: first entry, different address value (0 -> v4)
        # probe 9: first entry
        assert col.run_starts().tolist() == [True, False, True,
                                             True, True, True]

    def test_empty_connlog(self):
        col = ColumnarConnlog.from_connlog(ConnectionLog())
        assert col.entry_count == 0
        assert col.offsets.tolist() == [0]
        assert col.run_starts().tolist() == []

    def test_colpack_round_trip(self, connlog):
        col = ColumnarConnlog.from_connlog(connlog)
        back = colpack.unpack_object(colpack.pack_object(col))
        assert isinstance(back, ColumnarConnlog)
        for name in ("probe_ids", "offsets", "starts", "ends",
                     "addrs", "v6"):
            np.testing.assert_array_equal(getattr(back, name),
                                          getattr(col, name))
        assert back.slice_of(3) == col.slice_of(3)


class TestColumnarUptime:
    @pytest.fixture
    def uptime(self):
        return UptimeDataset([
            UptimeRecord(5, 100.0, 50.0),
            UptimeRecord(5, 200.0, 150.0),
            UptimeRecord(2, 90.0, 10.0),
        ])

    def test_rows_sorted_and_slices_match(self, uptime):
        colup = ColumnarUptime.from_uptime(uptime)
        assert colup.probe_ids.tolist() == [2, 5]
        assert colup.offsets.tolist() == [0, 1, 3]
        lo, hi = colup.slice_of(5)
        records = uptime.records(5)
        assert colup.timestamps[lo:hi].tolist() == [r.timestamp
                                                    for r in records]
        assert colup.uptimes[lo:hi].tolist() == [r.uptime for r in records]

    def test_colpack_round_trip(self, uptime):
        colup = ColumnarUptime.from_uptime(uptime)
        back = colpack.unpack_object(colpack.pack_object(colup))
        assert isinstance(back, ColumnarUptime)
        np.testing.assert_array_equal(back.timestamps, colup.timestamps)
        np.testing.assert_array_equal(back.uptimes, colup.uptimes)
        assert back.slice_of(2) == colup.slice_of(2)
