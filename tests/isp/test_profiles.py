"""Tests for repro.isp.profiles."""

import pytest

from repro.atlas.archive import COUNTRY_TO_CONTINENT
from repro.isp.profiles import (
    all_profiles,
    filler_profiles,
    paper_profiles,
    profile_by_name,
)
from repro.isp.spec import AccessTechnology
from repro.util.timeutil import HOUR


class TestPaperProfiles:
    def test_periodic_isps_match_table5_periods(self):
        expected_hours = {
            "Orange": 168, "DTAG": 24, "BT": 337, "ANTEL": 12,
            "Proximus": 36, "VIPnet": 92, "Net by Net": 47,
            "Digi Tavkozlesi": 168, "Orange Polska": 22,
        }
        for name, hours in expected_hours.items():
            spec = profile_by_name(name).spec
            assert spec.period == hours * HOUR, name
            assert spec.access is AccessTechnology.PPP, name

    def test_stable_isps_are_dhcp_without_period(self):
        for name in ("LGI", "Verizon", "Comcast", "Kabel Deutschland",
                     "Kabel BW", "Ziggo", "Virgin Media"):
            spec = profile_by_name(name).spec
            assert spec.access is AccessTechnology.DHCP, name
            assert not spec.is_periodic, name

    def test_reactive_ppp_isps(self):
        for name in ("Telecom Italia", "Wind Telecomunicazioni", "SFR"):
            spec = profile_by_name(name).spec
            assert spec.access is AccessTechnology.PPP
            assert spec.period is None

    def test_dtag_sync_window_is_night(self):
        spec = profile_by_name("DTAG").spec
        assert spec.sync_window == (0, 6)
        assert spec.sync_fraction == pytest.approx(0.75)

    def test_orange_is_mostly_periodic_free_running(self):
        spec = profile_by_name("Orange").spec
        assert spec.periodic_fraction > 0.85
        assert spec.sync_fraction == 0.0

    def test_bt_is_weakly_periodic(self):
        spec = profile_by_name("BT").spec
        assert spec.periodic_fraction < 0.3

    def test_mixed_period_isps(self):
        proximus = profile_by_name("Proximus").spec
        assert proximus.alt_period == 24 * HOUR
        polska = profile_by_name("Orange Polska").spec
        assert polska.alt_period == 24 * HOUR

    def test_table7_locality_ordering(self):
        # Telecom Italia scatters across prefixes far more than Verizon.
        ti = profile_by_name("Telecom Italia").spec.pool_policy
        vz = profile_by_name("Verizon").spec.pool_policy
        dt = profile_by_name("DTAG").spec.pool_policy
        assert ti.stay_bgp_prob < 0.2
        assert vz.stay_bgp_prob > 0.7
        assert dt.stay_bgp_prob > 0.7


class TestProfileConsistency:
    def test_unique_asns(self):
        profiles = all_profiles()
        assert len({p.spec.asn for p in profiles}) == len(profiles)

    def test_countries_have_continent_mappings(self):
        for profile in all_profiles():
            assert profile.spec.country in COUNTRY_TO_CONTINENT, \
                profile.spec.name

    def test_all_continents_covered_by_fillers(self):
        continents = {COUNTRY_TO_CONTINENT[p.spec.country]
                      for p in filler_profiles()}
        assert continents == {"EU", "NA", "AS", "AF", "SA", "OC"}

    def test_probe_counts_positive(self):
        assert all(p.probes >= 1 for p in all_profiles())

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("No Such ISP")

    def test_paper_profile_count(self):
        # 21 periodic + 3 reactive PPP + 7 DHCP named ISPs.
        assert len(paper_profiles()) == 31
