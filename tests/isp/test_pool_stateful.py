"""Stateful property tests for AddressPool.

Drives random allocate/release/try_allocate sequences against a model and
checks the pool's bookkeeping never drifts: no double allocation, releases
restore availability, and every handed-out address is inside the pool.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import PoolExhaustedError
from repro.isp.pool import AddressPool, PoolPolicy
from repro.net.ipv4 import IPv4Prefix
from repro.util.rng import substream

PREFIXES = [IPv4Prefix.parse("192.0.2.0/28"), IPv4Prefix.parse("198.51.100.0/28")]


class PoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pool = AddressPool(PREFIXES, PoolPolicy(0.5, 0.5))
        self.rng = substream(99, "stateful")
        self.held = set()

    @rule()
    def allocate(self):
        try:
            address = self.pool.allocate(self.rng)
        except PoolExhaustedError:
            assert len(self.held) == self.pool.capacity
            return
        assert address not in self.held, "double allocation"
        assert self.pool.contains(address)
        self.held.add(address)

    @rule(data=st.data())
    def allocate_with_previous(self, data):
        if not self.held:
            return
        previous = data.draw(st.sampled_from(sorted(self.held,
                                                    key=lambda a: a.value)))
        try:
            address = self.pool.allocate(self.rng, previous=previous)
        except PoolExhaustedError:
            return
        assert address != previous
        assert address not in self.held
        self.held.add(address)

    @rule(data=st.data())
    def release(self, data):
        if not self.held:
            return
        address = data.draw(st.sampled_from(sorted(self.held,
                                                   key=lambda a: a.value)))
        self.pool.release(address)
        self.held.remove(address)

    @rule(data=st.data())
    def try_allocate_specific(self, data):
        prefix = data.draw(st.sampled_from(PREFIXES))
        offset = data.draw(st.integers(0, prefix.size - 1))
        address = prefix.address_at(offset)
        outcome = self.pool.try_allocate(address)
        assert outcome == (address not in self.held)
        if outcome:
            self.held.add(address)

    @invariant()
    def count_matches_model(self):
        assert self.pool.allocated_count == len(self.held)

    @invariant()
    def held_marked_allocated(self):
        for address in self.held:
            assert self.pool.is_allocated(address)


TestPoolStateful = PoolMachine.TestCase
TestPoolStateful.settings = settings(max_examples=25,
                                     stateful_step_count=40,
                                     deadline=None)
