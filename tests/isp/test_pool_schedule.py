"""Tests for AddressPool allocation scheduling (administrative renumbering)."""

import pytest

from repro.errors import SimulationError
from repro.isp.pool import AddressPool, PoolPolicy
from repro.net.ipv4 import IPv4Prefix
from repro.util.rng import substream

OLD = IPv4Prefix.parse("192.0.2.0/25")
NEW = IPv4Prefix.parse("198.51.100.0/25")


def make_pool():
    return AddressPool([OLD, NEW], PoolPolicy(stay_bgp_prob=1.0))


class TestScheduleValidation:
    def test_empty_schedule_rejected(self):
        with pytest.raises(SimulationError):
            make_pool().schedule_allocation(0.0, [])

    def test_foreign_prefix_rejected(self):
        with pytest.raises(SimulationError):
            make_pool().schedule_allocation(
                0.0, [IPv4Prefix.parse("203.0.113.0/24")])

    def test_out_of_order_rejected(self):
        pool = make_pool()
        pool.schedule_allocation(100.0, [OLD])
        with pytest.raises(SimulationError):
            pool.schedule_allocation(50.0, [NEW])


class TestActivePrefixes:
    def test_no_schedule_all_active(self):
        pool = make_pool()
        assert set(pool.active_prefixes(1e9)) == {OLD, NEW}
        assert set(pool.active_prefixes(None)) == {OLD, NEW}

    def test_schedule_switches_over_time(self):
        pool = make_pool()
        pool.schedule_allocation(0.0, [OLD])
        pool.schedule_allocation(1000.0, [NEW])
        assert tuple(pool.active_prefixes(-1.0)) == (OLD, NEW)  # pre-schedule
        assert tuple(pool.active_prefixes(500.0)) == (OLD,)
        assert tuple(pool.active_prefixes(1000.0)) == (NEW,)
        assert tuple(pool.active_prefixes(2000.0)) == (NEW,)

    def test_now_none_ignores_schedule(self):
        pool = make_pool()
        pool.schedule_allocation(0.0, [OLD])
        assert set(pool.active_prefixes(None)) == {OLD, NEW}


class TestScheduledAllocation:
    def test_allocation_respects_active_window(self):
        pool = make_pool()
        pool.schedule_allocation(0.0, [OLD])
        pool.schedule_allocation(1000.0, [NEW])
        rng = substream(1, "sched")
        before = pool.allocate(rng, now=10.0)
        after = pool.allocate(rng, now=2000.0)
        assert OLD.contains(before)
        assert NEW.contains(after)

    def test_locality_broken_by_retirement(self):
        # stay_bgp_prob=1.0 would keep the customer in OLD, but OLD is
        # retired: the allocation must land in NEW.
        pool = make_pool()
        pool.schedule_allocation(0.0, [OLD])
        rng = substream(2, "sched")
        previous = pool.allocate(rng, now=10.0)
        pool.schedule_allocation(1000.0, [NEW])
        replacement = pool.allocate(rng, previous=previous, now=2000.0)
        assert NEW.contains(replacement)

    def test_released_old_addresses_not_reissued_after_retirement(self):
        pool = make_pool()
        pool.schedule_allocation(0.0, [OLD])
        pool.schedule_allocation(1000.0, [NEW])
        rng = substream(3, "sched")
        old_address = pool.allocate(rng, now=10.0)
        pool.release(old_address)
        for _ in range(20):
            fresh = pool.allocate(rng, now=2000.0)
            assert NEW.contains(fresh)
            pool.release(fresh)
