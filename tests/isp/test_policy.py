"""Tests for repro.isp.policy."""

import pytest

from repro.errors import SimulationError
from repro.isp.policy import MIN_SYNC_SESSION, DhcpPlant, PppPlant, build_plant
from repro.isp.pool import AddressPool, PoolPolicy
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.net.ipv4 import IPv4Prefix
from repro.util.timeutil import DAY, HOUR, WEEK


def make_spec(access=AccessTechnology.PPP, **overrides):
    kwargs = dict(
        name="Test ISP",
        asn=64496,
        country="DE",
        access=access,
        plan=AddressSpacePlan(num_prefixes=2, slash16_groups=2),
    )
    kwargs.update(overrides)
    return IspSpec(**kwargs)


def make_pool():
    return AddressPool(
        [IPv4Prefix.parse("192.0.2.0/24"), IPv4Prefix.parse("198.51.100.0/24")],
        PoolPolicy(),
    )


def make_plant(access=AccessTechnology.PPP, seed=1, **overrides):
    spec = make_spec(access=access, **overrides)
    return build_plant(spec, make_pool(), seed)


class TestBuildPlant:
    def test_dispatch(self):
        assert isinstance(make_plant(AccessTechnology.DHCP), DhcpPlant)
        assert isinstance(make_plant(AccessTechnology.PPP, period=DAY),
                          PppPlant)

    def test_wrong_spec_kind_rejected(self):
        with pytest.raises(SimulationError):
            DhcpPlant(make_spec(access=AccessTechnology.PPP), make_pool(), 1)
        with pytest.raises(SimulationError):
            PppPlant(make_spec(access=AccessTechnology.DHCP), make_pool(), 1)


class TestBehaviorDraws:
    def test_deterministic_and_cached(self):
        plant_a = make_plant(period=DAY, seed=7)
        plant_b = make_plant(period=DAY, seed=7)
        assert plant_a.behavior("cpe-1") == plant_b.behavior("cpe-1")
        assert plant_a.behavior("cpe-1") is plant_a.behavior("cpe-1")

    def test_periodic_fraction_zero_and_one(self):
        all_periodic = make_plant(period=DAY, periodic_fraction=1.0)
        none_periodic = make_plant(period=DAY, periodic_fraction=0.0)
        for cpe in ("a", "b", "c"):
            assert all_periodic.behavior(cpe).periodic
            assert not none_periodic.behavior(cpe).periodic

    def test_alt_period_split(self):
        plant = make_plant(period=22 * HOUR, alt_period=24 * HOUR,
                           alt_period_fraction=1.0, periodic_fraction=1.0)
        assert plant.behavior("x").period == 24 * HOUR

    def test_sync_second_inside_window(self):
        plant = make_plant(period=DAY, sync_window=(0, 6), sync_fraction=1.0,
                           periodic_fraction=1.0)
        for cpe in ("a", "b", "c", "d"):
            second = plant.behavior(cpe).sync_second
            assert second is not None
            assert 0 <= second < 6 * 3600

    def test_sync_requires_day_multiple_period(self):
        plant = make_plant(period=36 * HOUR, sync_window=(0, 6),
                           sync_fraction=1.0, periodic_fraction=1.0)
        assert plant.behavior("a").sync_second is None


class TestDhcpPlant:
    def test_connect_preserves_across_reconnects(self):
        plant = make_plant(AccessTechnology.DHCP, churn_rate_per_hour=0.0,
                           dhcp_change_prob=0.0)
        first = plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", 10 * HOUR, 11 * HOUR,
                                  lost_power=True)
        assert outcome.address == first
        assert not outcome.changed

    def test_no_scheduled_cut(self):
        plant = make_plant(AccessTechnology.DHCP)
        assert plant.scheduled_cut("cpe-1", 0.0) is None
        with pytest.raises(SimulationError):
            plant.periodic_cut("cpe-1", 0.0)

    def test_dhcp_change_prob_forces_renumber(self):
        plant = make_plant(AccessTechnology.DHCP, churn_rate_per_hour=0.0,
                           dhcp_change_prob=1.0)
        first = plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", HOUR, 2 * HOUR, lost_power=True)
        assert outcome.changed
        assert outcome.address != first

    def test_long_outage_with_churn_renumbers(self):
        plant = make_plant(AccessTechnology.DHCP, churn_rate_per_hour=50.0,
                           dhcp_change_prob=0.0, lease_duration=HOUR, seed=3)
        first = plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", 10 * HOUR, 400 * HOUR,
                                  lost_power=True)
        assert outcome.changed
        assert outcome.address != first


class TestPppPlantReconnect:
    def test_any_outage_renumbers_non_holder(self):
        plant = make_plant(period=None, holds_state_fraction=0.0)
        first = plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", 100.0, 160.0, lost_power=False)
        assert outcome.changed
        assert outcome.address != first

    def test_holder_survives_short_network_drop(self):
        plant = make_plant(period=None, holds_state_fraction=1.0,
                           hold_threshold_median=DAY,
                           hold_threshold_sigma=0.0)
        first = plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", 100.0, 160.0, lost_power=False)
        assert not outcome.changed
        assert outcome.address == first

    def test_holder_loses_on_power_cycle(self):
        plant = make_plant(period=None, holds_state_fraction=1.0,
                           hold_threshold_median=DAY,
                           hold_threshold_sigma=0.0)
        plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", 100.0, 160.0, lost_power=True)
        assert outcome.changed

    def test_holder_loses_on_long_network_outage(self):
        plant = make_plant(period=None, holds_state_fraction=1.0,
                           hold_threshold_median=HOUR,
                           hold_threshold_sigma=0.0)
        plant.connect("cpe-1", 0.0)
        outcome = plant.reconnect("cpe-1", 0.0, 10 * HOUR, lost_power=False)
        assert outcome.changed

    def test_reconnect_without_session_connects(self):
        plant = make_plant(period=DAY)
        outcome = plant.reconnect("cpe-1", 0.0, 60.0, lost_power=False)
        assert outcome.changed

    def test_double_connect_rejected(self):
        plant = make_plant(period=DAY)
        plant.connect("cpe-1", 0.0)
        with pytest.raises(SimulationError):
            plant.connect("cpe-1", 10.0)


class TestPppScheduledCut:
    def test_free_running_cut_at_period(self):
        plant = make_plant(period=WEEK, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0)
        assert plant.scheduled_cut("cpe-1", 1000.0) == 1000.0 + WEEK

    def test_non_periodic_cpe_never_cut(self):
        plant = make_plant(period=WEEK, periodic_fraction=0.0)
        assert plant.scheduled_cut("cpe-1", 0.0) is None

    def test_skip_prob_one_would_stack(self):
        # skip_prob=0.9 yields multiples of the period beyond the first.
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.9,
                           offschedule_prob=0.0, seed=5)
        cut = plant.scheduled_cut("cpe-1", 0.0)
        assert cut is not None
        assert cut % DAY == pytest.approx(0.0)
        assert cut >= DAY

    def test_offschedule_duration_not_multiple(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=1.0)
        cut = plant.scheduled_cut("cpe-1", 0.0)
        assert DAY * 1.15 <= cut <= DAY * 3.4

    def test_sync_cut_lands_on_sync_second(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0, sync_window=(0, 6),
                           sync_fraction=1.0)
        behavior = plant.behavior("cpe-1")
        cut = plant.scheduled_cut("cpe-1", 50_000.0)
        assert cut % DAY == pytest.approx(behavior.sync_second)
        assert cut >= 50_000.0 + MIN_SYNC_SESSION

    def test_sync_steady_state_duration_near_period(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0, sync_window=(0, 6),
                           sync_fraction=1.0)
        behavior = plant.behavior("cpe-1")
        # Session starts 20 minutes after the previous sync-time cut.
        session_start = 10 * DAY + behavior.sync_second + 1200.0
        cut = plant.scheduled_cut("cpe-1", session_start)
        duration = cut - session_start
        assert 0.9 * DAY < duration <= DAY


class TestPppPeriodicCut:
    def test_cut_disconnects_session(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0)
        plant.connect("cpe-1", 0.0)
        plant.periodic_cut("cpe-1", DAY)
        assert plant.concentrator.active_session("cpe-1") is None
        # Reconnect yields a fresh address.
        outcome = plant.reconnect("cpe-1", DAY, DAY + 1200.0,
                                  lost_power=False)
        assert outcome.changed
