"""Tests for repro.isp.spec."""

import pytest

from repro.errors import SimulationError
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.util.timeutil import DAY, HOUR


def make_spec(**overrides):
    kwargs = dict(
        name="Test ISP",
        asn=64496,
        country="DE",
        access=AccessTechnology.PPP,
        plan=AddressSpacePlan(num_prefixes=4, slash16_groups=2),
        period=DAY,
    )
    kwargs.update(overrides)
    return IspSpec(**kwargs)


class TestValidation:
    def test_valid_spec(self):
        spec = make_spec()
        assert spec.is_periodic

    def test_dhcp_is_not_periodic_even_with_period(self):
        spec = make_spec(access=AccessTechnology.DHCP)
        assert not spec.is_periodic

    def test_ppp_without_period_not_periodic(self):
        assert not make_spec(period=None).is_periodic

    @pytest.mark.parametrize("overrides", [
        dict(asn=0),
        dict(period=-1.0),
        dict(alt_period=-5.0),
        dict(period=None, alt_period=DAY),
        dict(periodic_fraction=1.5),
        dict(sync_fraction=-0.1),
        dict(skip_prob=2.0),
        dict(sync_window=(6, 3)),
        dict(sync_window=(-1, 5)),
        dict(sync_window=(0, 25)),
        dict(lease_duration=0.0),
        dict(churn_rate_per_hour=-1.0),
        dict(power_duration_median=0.0),
        dict(hold_threshold_median=-1.0),
    ])
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(SimulationError):
            make_spec(**overrides)

    def test_sync_window_valid(self):
        spec = make_spec(sync_window=(0, 6), sync_fraction=0.75)
        assert spec.sync_window == (0, 6)

    def test_alt_period(self):
        spec = make_spec(alt_period=22 * HOUR, alt_period_fraction=0.5)
        assert spec.alt_period == 22 * HOUR
