"""Tests for repro.isp.pool."""

import pytest

from repro.errors import PoolExhaustedError, SimulationError
from repro.isp.pool import AddressPool, PoolPolicy
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.util.rng import substream


def make_pool(prefix_texts, **policy_kwargs):
    prefixes = [IPv4Prefix.parse(t) for t in prefix_texts]
    return AddressPool(prefixes, PoolPolicy(**policy_kwargs))


class TestPoolConstruction:
    def test_requires_prefixes(self):
        with pytest.raises(SimulationError):
            AddressPool([])

    def test_rejects_overlapping_prefixes(self):
        with pytest.raises(SimulationError):
            make_pool(["10.0.0.0/8", "10.5.0.0/16"])

    def test_capacity(self):
        pool = make_pool(["192.0.2.0/30", "198.51.100.0/30"])
        assert pool.capacity == 8

    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            PoolPolicy(stay_bgp_prob=1.5)
        with pytest.raises(SimulationError):
            PoolPolicy(stay_slash16_prob=-0.1)


class TestAllocateRelease:
    def test_allocate_marks_and_release_unmarks(self):
        pool = make_pool(["192.0.2.0/30"])
        rng = substream(1, "pool")
        addr = pool.allocate(rng)
        assert pool.is_allocated(addr)
        assert pool.allocated_count == 1
        pool.release(addr)
        assert not pool.is_allocated(addr)

    def test_release_unallocated_rejected(self):
        pool = make_pool(["192.0.2.0/30"])
        with pytest.raises(SimulationError):
            pool.release(IPv4Address.parse("192.0.2.1"))

    def test_exhaustion(self):
        pool = make_pool(["192.0.2.0/31"])
        rng = substream(1, "pool")
        pool.allocate(rng)
        pool.allocate(rng)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(rng)

    def test_never_returns_previous(self):
        pool = make_pool(["192.0.2.0/31"], stay_bgp_prob=1.0)
        rng = substream(2, "pool")
        first = pool.allocate(rng)
        pool.release(first)
        second = pool.allocate(rng, previous=first)
        assert second != first

    def test_allocation_within_pool(self):
        pool = make_pool(["192.0.2.0/30", "198.51.100.0/30"])
        rng = substream(3, "pool")
        for _ in range(8):
            assert pool.contains(pool.allocate(rng))

    def test_nearly_full_scope_still_allocates(self):
        pool = make_pool(["192.0.2.0/28"])
        rng = substream(4, "pool")
        got = {pool.allocate(rng).value for _ in range(16)}
        assert len(got) == 16


class TestTryAllocate:
    def test_specific_address(self):
        pool = make_pool(["192.0.2.0/30"])
        addr = IPv4Address.parse("192.0.2.2")
        assert pool.try_allocate(addr)
        assert not pool.try_allocate(addr)
        pool.release(addr)
        assert pool.try_allocate(addr)

    def test_foreign_address_rejected(self):
        pool = make_pool(["192.0.2.0/30"])
        with pytest.raises(SimulationError):
            pool.try_allocate(IPv4Address.parse("8.8.8.8"))


class TestLocalityPolicy:
    def test_stay_bgp_one_keeps_prefix(self):
        pool = make_pool(["192.0.2.0/25", "198.51.100.0/25"], stay_bgp_prob=1.0)
        rng = substream(5, "pool")
        previous = pool.allocate(rng)
        prefix = previous.prefix(25)
        for _ in range(20):
            addr = pool.allocate(rng, previous=previous)
            assert prefix.contains(addr)
            pool.release(addr)

    def test_stay_bgp_zero_leaves_prefix(self):
        pool = make_pool(["192.0.2.0/25", "198.51.100.0/25"], stay_bgp_prob=0.0)
        rng = substream(6, "pool")
        previous = pool.allocate(rng)
        prefix = previous.prefix(25)
        for _ in range(20):
            addr = pool.allocate(rng, previous=previous)
            assert not prefix.contains(addr)
            pool.release(addr)

    def test_stay_bgp_zero_falls_back_when_others_full(self):
        pool = make_pool(["192.0.2.0/31", "192.0.2.4/31"], stay_bgp_prob=0.0)
        rng = substream(7, "pool")
        previous = pool.allocate(rng)
        # Fill the other prefix completely.
        other = IPv4Prefix.parse("192.0.2.4/31")
        taken = []
        while True:
            addr = pool.allocate(rng, previous=previous)
            taken.append(addr)
            if not other.contains(addr):
                break
        # The last allocation had to fall back to the previous prefix.
        assert previous.prefix(31).contains(taken[-1])

    def test_slash16_stickiness_for_wide_prefix(self):
        # A /14 prefix spans four /16s; with full /16 stickiness, renumbers
        # stay in the customer's /16.
        pool = AddressPool([IPv4Prefix.parse("20.0.0.0/14")],
                           PoolPolicy(stay_bgp_prob=1.0, stay_slash16_prob=1.0))
        rng = substream(8, "pool")
        previous = pool.allocate(rng)
        slash16 = previous.slash16()
        for _ in range(30):
            addr = pool.allocate(rng, previous=previous)
            assert slash16.contains(addr)
            pool.release(addr)

    def test_slash16_spread_without_stickiness(self):
        pool = AddressPool([IPv4Prefix.parse("20.0.0.0/14")],
                           PoolPolicy(stay_bgp_prob=1.0, stay_slash16_prob=0.0))
        rng = substream(9, "pool")
        previous = pool.allocate(rng)
        seen16 = set()
        for _ in range(60):
            addr = pool.allocate(rng, previous=previous)
            seen16.add(addr.slash16())
            pool.release(addr)
        assert len(seen16) > 1

    def test_previous_outside_pool_tolerated(self):
        pool = make_pool(["192.0.2.0/30"])
        rng = substream(10, "pool")
        addr = pool.allocate(rng, previous=IPv4Address.parse("8.8.8.8"))
        assert pool.contains(addr)
