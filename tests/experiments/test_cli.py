"""Tests for the repro-experiment command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "figure9" in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_standalone_experiment_runs(self, capsys):
        assert main(["table4"]) == 0
        assert "17:50:36" in capsys.readouterr().out

    def test_results_experiment_runs_at_tiny_scale(self, capsys):
        assert main(["table2", "--scale", "0.02", "--seed", "5"]) == 0
        assert "Total Probes" in capsys.readouterr().out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--scale", "abc"])


class TestReadPolicy:
    @pytest.fixture()
    def corrupted_bundle(self, tmp_path):
        from repro.experiments.scenarios import small_world
        from repro.faults.plan import FaultPlan
        from repro.sim.io import write_world
        root = write_world(small_world(seed=17, days=25), tmp_path / "b")
        FaultPlan.uniform(seed=3, rate=0.05).apply(root)
        return root

    def test_strict_default_aborts_on_corruption(self, corrupted_bundle):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            main(["table2", "--data", str(corrupted_bundle)])

    def test_repair_completes_and_reports(self, corrupted_bundle, capsys):
        assert main(["table2", "--data", str(corrupted_bundle),
                     "--read-policy", "repair"]) == 0
        captured = capsys.readouterr()
        assert "Total Probes" in captured.out
        assert "quarantined" in captured.err
