"""Tests for the repro-experiment command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "figure9" in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_standalone_experiment_runs(self, capsys):
        assert main(["table4"]) == 0
        assert "17:50:36" in capsys.readouterr().out

    def test_results_experiment_runs_at_tiny_scale(self, capsys):
        assert main(["table2", "--scale", "0.02", "--seed", "5"]) == 0
        assert "Total Probes" in capsys.readouterr().out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--scale", "abc"])
