"""Tests for repro.experiments.scenarios."""

from repro.core.filtering import ProbeCategory
from repro.core.pipeline import pipeline_for_world
from repro.experiments import scenarios


class TestSmallWorld:
    def test_builds_and_is_deterministic(self):
        a = scenarios.small_world(seed=3, days=20)
        b = scenarios.small_world(seed=3, days=20)
        assert a.connlog.entry_count() == b.connlog.entry_count()
        assert a.archive.probe_ids() == b.archive.probe_ids()

    def test_contains_all_three_isp_kinds(self):
        world = scenarios.small_world(seed=3, days=20)
        names = {p.spec.name for p in world.config.profiles}
        assert names == {"Daily-DSL", "Reactive-DSL", "Stable-Cable"}

    def test_pipeline_runs(self):
        world = scenarios.small_world(seed=3, days=20)
        results = pipeline_for_world(world).run()
        assert results.filter_report.count(ProbeCategory.ANALYZABLE) > 0


class TestConstants:
    def test_top_five_matches_paper_figures(self):
        assert scenarios.TOP_FIVE == (3215, 3320, 2856, 6830, 701)

    def test_german_ases_all_in_germany(self):
        from repro.isp.profiles import all_profiles
        by_asn = {p.spec.asn: p.spec for p in all_profiles()}
        for asn in scenarios.GERMAN_ASES:
            assert by_asn[asn].country == "DE"

    def test_paper_world_cached(self):
        # lru_cache: same object returned for identical arguments.
        # Use a tiny scale so the test stays fast.
        a = scenarios.paper_world(scale=0.02, seed=1)
        b = scenarios.paper_world(scale=0.02, seed=1)
        assert a is b
