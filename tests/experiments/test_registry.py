"""Tests for repro.experiments.registry and driver registration."""

import pytest

import repro.experiments  # noqa: F401  (triggers registration)
from repro.experiments.registry import (
    ExperimentOutput,
    experiment,
    experiment_ids,
    get_experiment,
)


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = experiment_ids()
        expected = {"table%d" % i for i in range(1, 8)}
        expected |= {"figure%d" % i for i in range(1, 10)}
        assert expected <= set(ids)

    def test_lookup(self):
        driver = get_experiment("table2")
        assert callable(driver)

    def test_unknown_id(self):
        with pytest.raises(KeyError) as exc:
            get_experiment("table99")
        assert "table5" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @experiment("table1")
            def clash():
                return ExperimentOutput("table1", "", "")


class TestStandaloneDrivers:
    """Drivers that build their own miniature scenarios."""

    def test_table1_sample(self):
        output = get_experiment("table1")()
        assert "IP Address" in output.text
        assert all(23.0 < d < 24.1 for d in output.data["durations_hours"])

    def test_table3_sample(self):
        output = get_experiment("table3")()
        assert output.data["detected"] == 1
        assert "Detected network outage" in output.text

    def test_table4_sample(self):
        output = get_experiment("table4")()
        assert output.data["reboots"] == 1
        assert "17:50:36" in output.text
