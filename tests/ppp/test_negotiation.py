"""Tests for repro.ppp.negotiation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.ppp.negotiation import (
    ConfigureAck,
    ConfigureNak,
    ConfigureReject,
    CpEndpoint,
    CpState,
    accept_all,
    negotiate,
)


class TestEndpointStates:
    def test_initial_to_req_sent(self):
        endpoint = CpEndpoint("a", {"x": 1})
        endpoint.next_request()
        assert endpoint.state is CpState.REQ_SENT

    def test_full_open_both_sides(self):
        a = CpEndpoint("a", {"x": 1})
        b = CpEndpoint("b", {"y": 2})
        agreed_a, agreed_b = negotiate(a, b)
        assert a.is_open and b.is_open
        assert agreed_a == {"x": 1}
        assert agreed_b == {"y": 2}

    def test_unknown_reply_rejected(self):
        endpoint = CpEndpoint("a", {"x": 1})
        with pytest.raises(SimulationError):
            endpoint.receive_reply("bogus")


class TestNakCycle:
    def make_capping_endpoint(self, limit):
        def policy(options):
            value = options.get("v", 0)
            if value > limit:
                return ConfigureNak({"v": limit})
            return ConfigureAck(dict(options))
        return CpEndpoint("capper", {"v": limit}, policy=policy)

    def test_nak_adjusts_value(self):
        asker = CpEndpoint("asker", {"v": 100})
        capper = self.make_capping_endpoint(10)
        agreed, _ = negotiate(asker, capper)
        assert agreed == {"v": 10}

    def test_acceptable_value_untouched(self):
        asker = CpEndpoint("asker", {"v": 5})
        capper = self.make_capping_endpoint(10)
        agreed, _ = negotiate(asker, capper)
        assert agreed == {"v": 5}

    def test_nonconverging_policy_raises(self):
        def always_nak(options):
            return ConfigureNak({"v": options.get("v", 0) + 1})
        asker = CpEndpoint("asker", {"v": 1})
        stubborn = CpEndpoint("stubborn", {}, policy=always_nak)
        with pytest.raises(SimulationError):
            negotiate(asker, stubborn, max_rounds=5)


class TestReject:
    def test_rejected_option_dropped(self):
        def reject_extras(options):
            if "secret" in options:
                return ConfigureReject(("secret",))
            return ConfigureAck(dict(options))
        asker = CpEndpoint("asker", {"v": 1, "secret": 42})
        strict = CpEndpoint("strict", {}, policy=reject_extras)
        agreed, _ = negotiate(asker, strict)
        assert agreed == {"v": 1}


class TestProperties:
    @given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(0, 100), max_size=3),
           st.dictionaries(st.sampled_from(["x", "y"]),
                           st.integers(0, 100), max_size=2))
    def test_accept_all_always_converges(self, opts_a, opts_b):
        a = CpEndpoint("a", dict(opts_a), policy=accept_all)
        b = CpEndpoint("b", dict(opts_b), policy=accept_all)
        agreed_a, agreed_b = negotiate(a, b)
        assert agreed_a == opts_a
        assert agreed_b == opts_b

    @given(st.integers(1, 1000), st.integers(1, 1000))
    def test_capping_converges_to_min(self, asked, limit):
        def policy(options):
            if options.get("v", 0) > limit:
                return ConfigureNak({"v": limit})
            return ConfigureAck(dict(options))
        asker = CpEndpoint("asker", {"v": asked})
        capper = CpEndpoint("capper", {"v": limit}, policy=policy)
        agreed, _ = negotiate(asker, capper)
        assert agreed["v"] == min(asked, limit)
