"""Tests for repro.ppp.lcp and repro.ppp.ipcp."""

import pytest

from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address
from repro.ppp import ipcp, lcp
from repro.util.rng import substream

ASSIGNED = IPv4Address.parse("192.0.2.77")


class TestLcp:
    def test_oversized_mru_capped_to_pppoe(self):
        agreed = lcp.establish_link(substream(1, "lcp"), subscriber_mru=1500)
        assert agreed["mru"] == lcp.PPPOE_MRU

    def test_small_mru_kept(self):
        agreed = lcp.establish_link(substream(1, "lcp"), subscriber_mru=1400)
        assert agreed["mru"] == 1400

    def test_magic_number_negotiated(self):
        agreed = lcp.establish_link(substream(2, "lcp"))
        assert 0 <= agreed["magic_number"] < 2 ** 32


class TestIpcp:
    def test_unassigned_request_gets_naked_to_assignment(self):
        address = ipcp.assign_address(ASSIGNED)
        assert address == ASSIGNED

    def test_previous_address_request_overridden(self):
        # A CPE asking for its old address still gets the new one — the
        # protocol-level reason PPP reconnects renumber.
        previous = IPv4Address.parse("192.0.2.1")
        address = ipcp.assign_address(ASSIGNED, requested=previous)
        assert address == ASSIGNED

    def test_requesting_the_assigned_address_acks_immediately(self):
        address = ipcp.assign_address(ASSIGNED, requested=ASSIGNED)
        assert address == ASSIGNED

    def test_policy_naks_mismatch(self):
        policy = ipcp.address_assignment_policy(ASSIGNED)
        from repro.ppp.negotiation import ConfigureAck, ConfigureNak
        nak = policy({"ip_address": ipcp.UNASSIGNED})
        assert isinstance(nak, ConfigureNak)
        assert nak.suggested["ip_address"] == ASSIGNED
        ack = policy({"ip_address": ASSIGNED})
        assert isinstance(ack, ConfigureAck)


class TestConcentratorIntegration:
    def test_session_address_flows_through_ipcp(self):
        from repro.isp.pool import AddressPool
        from repro.net.ipv4 import IPv4Prefix
        from repro.ppp.radius import RadiusServer
        from repro.ppp.session import PppoeConcentrator

        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/24")])
        concentrator = PppoeConcentrator(pool, RadiusServer(),
                                         substream(3, "ppp"))
        session = concentrator.connect("alice", 0.0)
        assert pool.is_allocated(session.address)
        assert pool.contains(session.address)
