"""Tests for repro.ppp.session."""

import pytest

from repro.errors import SimulationError
from repro.isp.pool import AddressPool, PoolPolicy
from repro.net.ipv4 import IPv4Prefix
from repro.ppp.radius import AcctStatus, RadiusServer
from repro.ppp.session import PppoeConcentrator, PppPhase
from repro.util.rng import substream
from repro.util.timeutil import DAY, HOUR


def make_concentrator(session_timeout=None, seed=1):
    pool = AddressPool([IPv4Prefix.parse("192.0.2.0/24")], PoolPolicy())
    radius = RadiusServer(session_timeout=session_timeout)
    return PppoeConcentrator(pool, radius, substream(seed, "ppp")), pool


class TestConnect:
    def test_connect_walks_ppp_phases(self):
        concentrator, _ = make_concentrator()
        session = concentrator.connect("alice", 0.0)
        assert session.phase is PppPhase.NETWORK
        assert session.phase_trace == [
            PppPhase.DEAD, PppPhase.ESTABLISH, PppPhase.AUTHENTICATE,
            PppPhase.NETWORK]

    def test_connect_allocates_from_pool(self):
        concentrator, pool = make_concentrator()
        session = concentrator.connect("alice", 0.0)
        assert pool.is_allocated(session.address)
        assert concentrator.active_session("alice") is session

    def test_double_connect_rejected(self):
        concentrator, _ = make_concentrator()
        concentrator.connect("alice", 0.0)
        with pytest.raises(SimulationError):
            concentrator.connect("alice", 1.0)

    def test_reconnect_always_changes_address(self):
        # The key PPP-vs-DHCP distinction: no preservation across sessions.
        concentrator, _ = make_concentrator(seed=2)
        for trial in range(10):
            session = concentrator.connect("alice", float(trial * 100))
            concentrator.disconnect("alice", float(trial * 100 + 50))
            next_session = concentrator.connect("alice",
                                                float(trial * 100 + 60))
            assert next_session.address != session.address
            concentrator.disconnect("alice", float(trial * 100 + 90))

    def test_accounting_start_recorded(self):
        concentrator, _ = make_concentrator()
        concentrator.connect("alice", 5.0)
        records = concentrator.radius.accounting_records
        assert len(records) == 1
        assert records[0].status is AcctStatus.START


class TestDisconnect:
    def test_disconnect_frees_address_and_accounts(self):
        concentrator, pool = make_concentrator()
        session = concentrator.connect("alice", 0.0)
        ended = concentrator.disconnect("alice", 50.0, cause="Lost-Carrier")
        assert not pool.is_allocated(session.address)
        assert ended.ended_at == 50.0
        assert ended.terminate_cause == "Lost-Carrier"
        assert not ended.is_active()
        assert ended.phase_trace[-2:] == [PppPhase.TERMINATE, PppPhase.DEAD]

    def test_disconnect_unknown_rejected(self):
        concentrator, _ = make_concentrator()
        with pytest.raises(SimulationError):
            concentrator.disconnect("ghost", 0.0)


class TestSessionTimeout:
    def test_expires_at(self):
        concentrator, _ = make_concentrator(session_timeout=DAY)
        session = concentrator.connect("alice", 100.0)
        assert session.expires_at == 100.0 + DAY

    def test_no_timeout_never_enforced(self):
        concentrator, _ = make_concentrator(session_timeout=None)
        concentrator.connect("alice", 0.0)
        assert concentrator.enforce_timeout("alice", 1e9) is None

    def test_enforce_before_expiry_is_noop(self):
        concentrator, _ = make_concentrator(session_timeout=DAY)
        concentrator.connect("alice", 0.0)
        assert concentrator.enforce_timeout("alice", HOUR) is None
        assert concentrator.active_session("alice") is not None

    def test_enforce_after_expiry_cuts_at_exact_limit(self):
        # Periodic renumbering: the session ends exactly at the timeout,
        # which is why durations pile up at d in the paper's Figure 2.
        concentrator, _ = make_concentrator(session_timeout=DAY)
        concentrator.connect("alice", 0.0)
        ended = concentrator.enforce_timeout("alice", DAY + HOUR)
        assert ended is not None
        assert ended.ended_at == DAY
        assert ended.terminate_cause == "Session-Timeout"
        assert concentrator.active_session("alice") is None

    def test_enforce_unknown_user_is_noop(self):
        concentrator, _ = make_concentrator(session_timeout=DAY)
        assert concentrator.enforce_timeout("ghost", 1e9) is None
