"""Tests for repro.ppp.radius."""

import pytest

from repro.errors import SimulationError
from repro.ppp.radius import AccessAccept, AcctStatus, RadiusServer


class TestAuthorize:
    def test_accept_carries_session_timeout(self):
        server = RadiusServer(session_timeout=86400.0)
        accept = server.authorize("alice")
        assert accept == AccessAccept("alice", 86400.0)

    def test_no_timeout(self):
        assert RadiusServer().authorize("bob").session_timeout is None

    def test_unknown_user_rejected(self):
        server = RadiusServer(known_users={"alice"})
        server.authorize("alice")
        with pytest.raises(SimulationError):
            server.authorize("mallory")

    def test_validation(self):
        with pytest.raises(SimulationError):
            RadiusServer(session_timeout=0.0)
        with pytest.raises(SimulationError):
            AccessAccept("x", -5.0)


class TestAccounting:
    def test_start_stop_roundtrip(self):
        server = RadiusServer()
        sid = server.account_start("alice", 100.0)
        server.account_stop("alice", 400.0, sid, "Session-Timeout")
        records = server.accounting_records
        assert [r.status for r in records] == [AcctStatus.START, AcctStatus.STOP]
        assert records[1].terminate_cause == "Session-Timeout"

    def test_session_ids_unique(self):
        server = RadiusServer()
        assert server.account_start("a", 0.0) != server.account_start("a", 1.0)

    def test_stop_unknown_session_rejected(self):
        server = RadiusServer()
        with pytest.raises(SimulationError):
            server.account_stop("a", 0.0, 99, "x")

    def test_session_durations(self):
        server = RadiusServer()
        sid1 = server.account_start("alice", 0.0)
        server.account_stop("alice", 100.0, sid1, "t")
        sid2 = server.account_start("alice", 200.0)
        server.account_stop("alice", 500.0, sid2, "t")
        server.account_start("bob", 0.0)  # still open, not counted
        assert server.session_durations("alice") == [100.0, 300.0]
        assert server.session_durations("bob") == []
