"""Trigger / clean / noqa tests for RPR010 (wire-contract drift)."""

from __future__ import annotations

import json

from repro.devtools.cli import main
from repro.devtools.driver import run_lint
from repro.devtools.wire import contract_digest, load_contracts

SHARD = (
    "from dataclasses import dataclass\n\n\n"
    "@dataclass(frozen=True)\n"
    "class ShardResult:\n"
    '    """One worker\'s slice of the run."""\n\n'
    '    __wire_contract__ = "shard-result"\n\n'
    "    shard_index: int\n"
    "    verdicts: dict\n"
)

SHARD_GREW = SHARD + "    metrics: dict\n"


def rules_of(result) -> set[str]:
    return {d.rule for d in result.diagnostics}


def generate(tree, contracts) -> None:
    assert main(["--contracts", str(contracts), "--update-contracts",
                 str(tree)]) == 0


# -------------------------------------------------------------- lifecycle

def test_marked_type_without_contract_file_is_flagged(make_tree):
    tree = make_tree({"pkg/workers.py": SHARD})
    result = run_lint([tree], rules=["RPR010"])
    assert rules_of(result) == {"RPR010"}
    message = result.diagnostics[0].message
    assert "no wire-contracts.json was found" in message
    assert "--update-contracts" in message


def test_generate_then_lint_is_clean(make_tree, tmp_path, capsys):
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    assert "wrote 1 wire contract(s)" in capsys.readouterr().err
    entry = load_contracts(contracts)["shard-result"]
    assert entry["version"] == 1
    assert entry["spec"]["fields"] == [["shard_index", "int", None],
                                       ["verdicts", "dict", None]]
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert result.diagnostics == []


def test_added_field_without_regeneration_drifts(make_tree, tmp_path):
    # The acceptance fixture: grow ShardResult, keep the old contract.
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    (tree / "pkg" / "workers.py").write_text(SHARD_GREW, encoding="utf-8")
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert rules_of(result) == {"RPR010"}
    message = result.diagnostics[0].message
    assert "has drifted" in message
    assert "added: metrics" in message
    assert "version bump" in message


def test_regeneration_bumps_version_and_goes_clean(make_tree, tmp_path):
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    (tree / "pkg" / "workers.py").write_text(SHARD_GREW, encoding="utf-8")
    generate(tree, contracts)
    entry = load_contracts(contracts)["shard-result"]
    assert entry["version"] == 2
    assert ["metrics", "dict", None] in entry["spec"]["fields"]
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert result.diagnostics == []


def test_regeneration_keeps_version_of_unchanged_contract(make_tree,
                                                          tmp_path):
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    generate(tree, contracts)
    assert load_contracts(contracts)["shard-result"]["version"] == 1


def test_hand_edited_entry_fails_digest_check(make_tree, tmp_path):
    # Same spec, tampered digest: the triple (name, version, spec) no
    # longer hashes to what the file records.
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    payload = json.loads(contracts.read_text(encoding="utf-8"))
    payload["contracts"]["shard-result"]["digest"] = "0" * 64
    contracts.write_text(json.dumps(payload), encoding="utf-8")
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert rules_of(result) == {"RPR010"}
    assert ("hand-edited spec without a version bump?"
            in result.diagnostics[0].message)


def test_stale_contract_entry_is_flagged(make_tree, tmp_path):
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    payload = json.loads(contracts.read_text(encoding="utf-8"))
    spec = {"kind": "class", "source": "pkg.old.Gone", "fields": []}
    payload["contracts"]["retired-type"] = {
        "version": 1, "spec": spec,
        "digest": contract_digest("retired-type", 1, spec)}
    contracts.write_text(json.dumps(payload), encoding="utf-8")
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert rules_of(result) == {"RPR010"}
    message = result.diagnostics[0].message
    assert "'retired-type'" in message
    assert "no source declaration carries it" in message


def test_unreadable_contract_file_is_reported(make_tree, tmp_path):
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    contracts.write_text("{not json", encoding="utf-8")
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert rules_of(result) == {"RPR010"}
    assert "unreadable" in result.diagnostics[0].message


def test_duplicate_contract_names_are_flagged(make_tree, tmp_path):
    tree = make_tree({
        "pkg/workers.py": SHARD,
        "pkg/other.py": SHARD.replace("class ShardResult",
                                      "class ShardCopy"),
    })
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert rules_of(result) == {"RPR010"}
    assert any("declared more than once" in d.message
               for d in result.diagnostics)


# --------------------------------------------------- module-level schemas

def test_module_schema_contract_roundtrip(make_tree, tmp_path):
    tree = make_tree({"pkg/trace.py": (
        'SCHEMA = "pkg-trace-1"\n'
        'FIELDS = ("kind", "offset")\n\n'
        '__wire_contract__ = {"pkg-trace": ("SCHEMA", "FIELDS")}\n'
    )})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    entry = load_contracts(contracts)["pkg-trace"]
    assert entry["spec"]["kind"] == "module"
    assert entry["spec"]["constants"]["SCHEMA"] == "'pkg-trace-1'"
    assert run_lint([tree], rules=["RPR010"],
                    contracts_path=contracts).diagnostics == []


def test_module_schema_missing_constant_is_flagged(make_tree, tmp_path):
    tree = make_tree({"pkg/trace.py": (
        '__wire_contract__ = {"pkg-trace": ("SCHEMA",)}\n'
    )})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    result = run_lint([tree], rules=["RPR010"],
                      contracts_path=contracts)
    assert rules_of(result) == {"RPR010"}
    assert "not defined at module level" in result.diagnostics[0].message


# ------------------------------------------------------------------ noqa

def test_noqa_on_marker_line_suppresses(make_tree):
    marked = SHARD.replace(
        '__wire_contract__ = "shard-result"',
        '__wire_contract__ = "shard-result"'
        "  # repro: noqa[RPR010] -- contract file lands next commit")
    tree = make_tree({"pkg/workers.py": marked})
    assert run_lint([tree], rules=["RPR010"]).diagnostics == []


# ------------------------------------------------------------------- cli

def test_update_contracts_requires_contracts_path(capsys):
    assert main(["--update-contracts"]) == 2
    assert "requires --contracts" in capsys.readouterr().err


def test_contracts_file_discovered_above_linted_path(make_tree, tmp_path,
                                                     capsys):
    # run_lint with no explicit contracts_path walks up from the linted
    # directory — the repo-root layout.
    tree = make_tree({"pkg/workers.py": SHARD})
    contracts = tmp_path / "wire-contracts.json"
    generate(tree, contracts)
    capsys.readouterr()
    result = run_lint([tree / "pkg"], rules=["RPR010"])
    assert result.diagnostics == []


def test_real_tree_matches_checked_in_contracts():
    from pathlib import Path

    import repro

    src = Path(repro.__file__).resolve().parent
    result = run_lint([src], rules=["RPR010"])
    assert result.diagnostics == [], [d.format() for d in result.diagnostics]
