"""Shared fixtures for the devtools test suite."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.devtools.callgraph import Project, summarize_source
from repro.devtools.driver import iter_python_files, module_name_for


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize ``{relative_path: source}`` under ``root``.

    Creates any missing parent packages' ``__init__.py`` so that
    :func:`module_name_for` derives the intended dotted names.
    """
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        current = path.parent
        while current != root and current != current.parent:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            current = current.parent
        path.write_text(source, encoding="utf-8")
    return root


def project_of(root: Path) -> Project:
    """Summarize every file under ``root`` into a :class:`Project`."""
    summaries = []
    for path in iter_python_files([root]):
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
        summaries.append(summarize_source(
            tree, module_name_for(path), str(path),
            is_package=path.name == "__init__.py"))
    return Project(summaries)


@pytest.fixture
def make_project(tmp_path):
    """Factory: ``make_project({"pkg/mod.py": "..."}) -> Project``."""
    def build(files: dict[str, str]) -> Project:
        return project_of(write_tree(tmp_path, files))
    return build


@pytest.fixture
def make_tree(tmp_path):
    """Factory: ``make_tree({"pkg/mod.py": "..."}) -> Path`` (for run_lint)."""
    def build(files: dict[str, str]) -> Path:
        return write_tree(tmp_path, files)
    return build
