"""Trigger / clean / noqa tests for the interprocedural rules RPR006–008."""

from __future__ import annotations

from repro.devtools.driver import run_lint


def rules_of(result) -> set[str]:
    return {d.rule for d in result.diagnostics}


# A minimal runnable stage-graph skeleton the fixtures build on.
def stage_tree(stage_body: str, extra: dict[str, str] | None = None,
               noqa: str = "") -> dict[str, str]:
    files = {
        "pkg/graph.py": "class StageSpec:\n    pass\n",
        "pkg/stages.py": (
            "from pkg.graph import StageSpec\n"
            "import pkg.work\n"
            "STAGES = (\n"
            "    StageSpec(name='one', inputs=(), outputs=('a',), "
            "fan_out=None, func=pkg.work.run_one),%s\n"
            ")\n" % noqa
        ),
        "pkg/work.py": stage_body,
        "pkg/cache.py": (
            "CODE_VERSION_PACKAGES = ('graph.py', 'stages.py', 'work.py', "
            "'cache.py')\n"
        ),
    }
    files.update(extra or {})
    return files


# ---------------------------------------------------------------- RPR006

def test_rpr006_flags_impure_stage(make_tree):
    tree = make_tree(stage_tree(
        "import time\n\n"
        "def run_one(data):\n"
        "    return data, time.time()\n"
    ))
    result = run_lint([tree], rules=["RPR006"])
    assert rules_of(result) == {"RPR006"}
    message = result.diagnostics[0].message
    assert "NONDETERMINISTIC" in message and "time.time()" in message


def test_rpr006_clean_on_pure_stage(make_tree):
    tree = make_tree(stage_tree(
        "def run_one(data):\n"
        "    return sorted(data)\n"
    ))
    assert run_lint([tree], rules=["RPR006"]).diagnostics == []


def test_rpr006_flags_unresolvable_stage_function(make_tree):
    files = stage_tree("def other():\n    return 1\n")
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "pkg.work.run_one", "pkg.work.missing")
    tree = make_tree(files)
    result = run_lint([tree], rules=["RPR006"])
    assert rules_of(result) == {"RPR006"}
    assert "does not resolve" in result.diagnostics[0].message


def test_rpr006_noqa_with_justification_suppresses(make_tree):
    tree = make_tree(stage_tree(
        "import time\n\n"
        "def run_one(data):\n"
        "    return data, time.time()\n",
        noqa="  # repro: noqa[RPR006] -- timing stage, not cached",
    ))
    assert run_lint([tree], rules=["RPR006"]).diagnostics == []


# ---------------------------------------------------------------- RPR007

def test_rpr007_flags_reachable_unhashed_module(make_tree):
    tree = make_tree(stage_tree(
        "from pkg import stray\n\n"
        "def run_one(data):\n"
        "    return stray.tweak(data)\n",
        extra={"pkg/stray.py": "def tweak(data):\n    return data\n"},
    ))
    result = run_lint([tree], rules=["RPR007"])
    assert rules_of(result) == {"RPR007"}
    message = result.diagnostics[0].message
    assert "pkg.stray" in message and "pkg.stages -> pkg.work" not in message
    assert "CODE_VERSION_PACKAGES" in message


def test_rpr007_reports_the_import_chain(make_tree):
    tree = make_tree(stage_tree(
        "from pkg import middle\n\n"
        "def run_one(data):\n"
        "    return middle.go(data)\n",
        extra={
            "pkg/middle.py": (
                "from pkg import deep\n\n"
                "def go(data):\n    return deep.go(data)\n"
            ),
            "pkg/deep.py": "def go(data):\n    return data\n",
        },
    ))
    result = run_lint([tree], rules=["RPR007"])
    deep = [d for d in result.diagnostics if "pkg.deep " in d.message]
    assert len(deep) == 1
    assert "pkg.middle -> pkg.deep" in deep[0].message


def test_rpr007_clean_when_closure_is_covered(make_tree):
    tree = make_tree(stage_tree(
        "from pkg import stray\n\n"
        "def run_one(data):\n"
        "    return stray.tweak(data)\n",
        extra={"pkg/stray.py": "def tweak(data):\n    return data\n"},
    ))
    cache = tree / "pkg" / "cache.py"
    cache.write_text(cache.read_text(encoding="utf-8").replace(
        "'cache.py')", "'cache.py', 'stray.py')"), encoding="utf-8")
    assert run_lint([tree], rules=["RPR007"]).diagnostics == []


def test_rpr007_flags_missing_code_version_declaration(make_tree):
    files = stage_tree("def run_one(data):\n    return data\n")
    del files["pkg/cache.py"]
    tree = make_tree(files)
    result = run_lint([tree], rules=["RPR007"])
    assert rules_of(result) == {"RPR007"}
    assert "no CODE_VERSION_PACKAGES" in result.diagnostics[0].message


def test_rpr007_noqa_on_declaration_line_suppresses(make_tree):
    files = stage_tree(
        "from pkg import stray\n\n"
        "def run_one(data):\n"
        "    return stray.tweak(data)\n",
        extra={"pkg/stray.py": "def tweak(data):\n    return data\n"},
    )
    files["pkg/cache.py"] = files["pkg/cache.py"].rstrip("\n") + \
        "  # repro: noqa[RPR007] -- stray is config-only\n"
    tree = make_tree(files)
    assert run_lint([tree], rules=["RPR007"]).diagnostics == []


# ---------------------------------------------------------------- RPR008

def worker_tree(worker_body: str) -> dict[str, str]:
    return {
        "pkg/exec.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import pkg.work\n\n"
            "def run(shards):\n"
            "    pool = ProcessPoolExecutor(\n"
            "        initializer=pkg.work.init, initargs=())\n"
            "    return list(pool.map(pkg.work.task, shards))\n"
        ),
        "pkg/work.py": worker_body,
    }


def test_rpr008_flags_unsanctioned_global_write(make_tree):
    tree = make_tree(worker_tree(
        "_context = None\n"
        "_scratch = {}\n\n"
        "def init(ctx=None):\n"
        "    global _context\n"
        "    _context = ctx\n\n"
        "def task(shard):\n"
        "    _scratch[shard] = True\n"
        "    return shard\n"
    ))
    result = run_lint([tree], rules=["RPR008"])
    assert rules_of(result) == {"RPR008"}
    message = result.diagnostics[0].message
    assert "_scratch" in message and "_context" in message


def test_rpr008_clean_when_writes_are_initializer_owned(make_tree):
    tree = make_tree(worker_tree(
        "_context = None\n"
        "_memo = {}\n\n"
        "def init(ctx=None):\n"
        "    global _context\n"
        "    _context = ctx\n"
        "    _memo.clear()\n\n"
        "def task(shard):\n"
        "    _memo[shard] = shard\n"
        "    return _memo[shard]\n"
    ))
    assert run_lint([tree], rules=["RPR008"]).diagnostics == []


def test_rpr008_flags_lambda_pool_task(make_tree):
    files = worker_tree("def init(ctx=None):\n    pass\n")
    files["pkg/exec.py"] = files["pkg/exec.py"].replace(
        "pkg.work.task", "lambda s: s")
    tree = make_tree(files)
    result = run_lint([tree], rules=["RPR008"])
    assert rules_of(result) == {"RPR008"}
    assert "pickled" in result.diagnostics[0].message


def test_rpr008_flags_nested_function_pool_task(make_tree):
    files = worker_tree("def init(ctx=None):\n    pass\n")
    files["pkg/exec.py"] = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "import pkg.work\n\n"
        "def run(shards):\n"
        "    def task(shard):\n"
        "        return shard\n"
        "    pool = ProcessPoolExecutor(\n"
        "        initializer=pkg.work.init, initargs=())\n"
        "    return list(pool.map(task, shards))\n"
    )
    tree = make_tree(files)
    result = run_lint([tree], rules=["RPR008"])
    assert rules_of(result) == {"RPR008"}
    assert "module level" in result.diagnostics[0].message


def test_rpr008_noqa_suppresses(make_tree):
    tree = make_tree(worker_tree(
        "_context = None\n"
        "_stats = {}\n\n"
        "def init(ctx=None):\n"
        "    global _context\n"
        "    _context = ctx\n\n"
        "def task(shard):\n"
        "    _stats[shard] = True  # repro: noqa[RPR008] -- debug-only tally\n"
        "    return shard\n"
    ))
    assert run_lint([tree], rules=["RPR008"]).diagnostics == []


def test_real_tree_is_clean_under_project_rules():
    import repro
    from pathlib import Path

    result = run_lint([Path(repro.__file__).resolve().parent],
                      rules=["RPR006", "RPR007", "RPR008"])
    assert result.diagnostics == [], [d.format() for d in result.diagnostics]
