"""Trigger / clean / noqa tests for the concurrency rules RPR011–012.

RPR011 (thread-role races) and RPR012 (resource lifecycles) run over the
same per-function facts the other interprocedural rules use, so each
fixture is a miniature package tree: the interesting part is which call
chains the analysis walks, not the syntax at any one line.
"""

from __future__ import annotations

from repro.devtools.cli import main
from repro.devtools.driver import run_lint


def rules_of(result) -> set[str]:
    return {d.rule for d in result.diagnostics}


def messages(result) -> str:
    return "\n".join(d.message for d in result.diagnostics)


# ---------------------------------------------------------------- RPR011

RACY_SERVER = """\
import threading

class Server:
    def __init__(self):
        self.hits = 0

    def start(self):
        threading.Thread(target=self._work).start()
        self.hits = self.hits + 1

    def _work(self):
        self.hits = self.hits + 1
"""


def test_rpr011_flags_unguarded_cross_role_attribute(make_tree):
    tree = make_tree({"pkg/server.py": RACY_SERVER})
    result = run_lint([tree], rules=["RPR011"])
    assert rules_of(result) == {"RPR011"}
    assert "Server.hits" in messages(result)
    assert "no common lock guard" in messages(result)


def test_rpr011_witness_names_both_roles(make_tree):
    tree = make_tree({"pkg/server.py": RACY_SERVER})
    [finding] = run_lint([tree], rules=["RPR011"]).diagnostics
    # One side of the witness is the main role, the other the spawned
    # thread's entry point.
    assert "main" in finding.message
    assert "Server._work" in finding.message


def test_rpr011_witness_renders_interprocedural_chain(make_tree):
    tree = make_tree({"pkg/server.py": """\
import threading

class Server:
    def __init__(self):
        self.hits = 0

    def start(self):
        threading.Thread(target=self._work).start()
        self.hits = self.hits + 1

    def _work(self):
        self._step()

    def _step(self):
        self._bump()

    def _bump(self):
        self.hits = self.hits + 1
"""})
    [finding] = run_lint([tree], rules=["RPR011"]).diagnostics
    # The thread side reaches the write through two calls; the witness
    # chain must spell the path out, not just the endpoint.
    assert "Server._step -> " in finding.message
    assert "Server._bump" in finding.message


def test_rpr011_clean_when_lock_dominates_both_sides(make_tree):
    tree = make_tree({"pkg/server.py": """\
import threading

class Server:
    def __init__(self):
        self.hits = 0
        self._lock = threading.Lock()

    def start(self):
        threading.Thread(target=self._work).start()
        with self._lock:
            self.hits = self.hits + 1

    def _work(self):
        with self._lock:
            self.hits = self.hits + 1
"""})
    assert run_lint([tree], rules=["RPR011"]).diagnostics == []


def test_rpr011_clean_when_writes_are_constructor_confined(make_tree):
    # Writes that happen only in ``__init__`` land before the object can
    # be shared, so cross-role *reads* of the attribute are fine.
    tree = make_tree({"pkg/server.py": """\
import threading

class Server:
    def __init__(self, limit):
        self.limit = limit

    def start(self):
        threading.Thread(target=self._work).start()
        return self.limit

    def _work(self):
        return self.limit
"""})
    assert run_lint([tree], rules=["RPR011"]).diagnostics == []


def test_rpr011_clean_on_intrinsically_safe_type(make_tree):
    tree = make_tree({"pkg/server.py": """\
import queue
import threading

class Server:
    def __init__(self):
        self.jobs = queue.Queue()

    def start(self):
        threading.Thread(target=self._work).start()
        self.jobs.put(1)

    def _work(self):
        return self.jobs.get()
"""})
    assert run_lint([tree], rules=["RPR011"]).diagnostics == []


def test_rpr011_flags_unguarded_module_global(make_tree):
    tree = make_tree({"pkg/state.py": """\
import threading

_cache = {}

def lookup(key):
    found = _cache.get(key)
    if found is None:
        found = _cache[key] = object()
    return found

def serve():
    threading.Thread(target=_drain).start()
    return lookup("x")

def _drain():
    _cache.clear()
    lookup("y")
"""})
    result = run_lint([tree], rules=["RPR011"])
    assert rules_of(result) == {"RPR011"}
    assert "pkg.state._cache" in messages(result)


def test_rpr011_noqa_with_justification_suppresses(make_tree):
    source = RACY_SERVER.replace(
        "    def _work(self):\n        self.hits = self.hits + 1",
        "    def _work(self):\n"
        "        self.hits = self.hits + 1"
        "  # repro: noqa[RPR011] -- test-only counter")
    assert "noqa[RPR011]" in source
    tree = make_tree({"pkg/server.py": source})
    result = run_lint([tree], rules=["RPR011"])
    # The noqa sits on the finding's anchor line, so it must suppress.
    anchored = [d for d in result.diagnostics if "noqa" not in d.message]
    assert anchored == [] and result.diagnostics == []


# ---------------------------------------------------------------- RPR012

def test_rpr012_flags_socket_open_across_raising_call(make_tree):
    # The configure call can raise, and the socket then never reaches
    # the wrapper that would own closing it (the transport.connect bug
    # shape).
    tree = make_tree({"pkg/net.py": """\
import socket

def wrap(sock):
    return ("wrapped", sock)

def ping(addr):
    sock = socket.create_connection(addr)
    sock.settimeout(5.0)
    return wrap(sock)
"""})
    result = run_lint([tree], rules=["RPR012"])
    assert rules_of(result) == {"RPR012"}
    assert "socket" in messages(result)
    assert "can raise before it is closed" in messages(result)


def test_rpr012_clean_under_with_block(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

def ping(addr):
    with socket.create_connection(addr) as sock:
        sock.sendall(b"ping")
        return sock.recv(4)
"""})
    assert run_lint([tree], rules=["RPR012"]).diagnostics == []


def test_rpr012_clean_under_try_finally(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

def ping(addr):
    sock = socket.create_connection(addr)
    try:
        sock.sendall(b"ping")
        return sock.recv(4)
    finally:
        sock.close()
"""})
    assert run_lint([tree], rules=["RPR012"]).diagnostics == []


def test_rpr012_clean_when_ownership_is_returned(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

def dial(addr):
    sock = socket.create_connection(addr)
    return sock
"""})
    assert run_lint([tree], rules=["RPR012"]).diagnostics == []


def test_rpr012_interprocedural_chain_through_returner(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

def dial(addr):
    sock = socket.create_connection(addr)
    return sock

def ping(addr):
    sock = dial(addr)
    sock.sendall(b"ping")
"""})
    result = run_lint([tree], rules=["RPR012"])
    assert rules_of(result) == {"RPR012"}
    # The obligation originates in the callee; the witness says so.
    assert "pkg.net.dial" in messages(result)
    assert "->" in messages(result)
    # ...and anchors the finding at the call site in the caller.
    assert all("pkg.net.ping" in d.message for d in result.diagnostics)


def test_rpr012_clean_when_field_transfer_has_a_closer(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

class Conn:
    def __init__(self, addr):
        self._sock = socket.create_connection(addr)

    def close(self):
        self._sock.close()
"""})
    assert run_lint([tree], rules=["RPR012"]).diagnostics == []


def test_rpr012_flags_field_transfer_without_closer(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

class Conn:
    def __init__(self, addr):
        self._sock = socket.create_connection(addr)

    def fileno(self):
        return self._sock.fileno()
"""})
    result = run_lint([tree], rules=["RPR012"])
    assert rules_of(result) == {"RPR012"}


def test_rpr012_noqa_with_justification_suppresses(make_tree):
    tree = make_tree({"pkg/net.py": """\
import socket

def ping(addr):
    sock = socket.create_connection(addr)  # repro: noqa[RPR012] -- closed by the harness
    sock.sendall(b"ping")
"""})
    assert run_lint([tree], rules=["RPR012"]).diagnostics == []


# ------------------------------------------------------- cache round-trip

def test_concurrency_rules_fire_from_cached_summaries(make_tree, tmp_path):
    """Warm runs rebuild both rules' findings from serialized facts."""
    tree = make_tree({
        "pkg/server.py": RACY_SERVER,
        "pkg/net.py": """\
import socket

def ping(addr):
    sock = socket.create_connection(addr)
    sock.sendall(b"ping")
""",
    })
    cache = tmp_path / "cache.json"
    cold = run_lint([tree], cache_path=cache)
    assert cold.files_analyzed > 0
    warm = run_lint([tree], cache_path=cache)
    assert warm.files_analyzed == 0
    assert warm.files_skipped == cold.files_analyzed
    assert [d.to_dict() for d in warm.diagnostics] \
        == [d.to_dict() for d in cold.diagnostics]
    assert {"RPR011", "RPR012"} <= rules_of(warm)


# ----------------------------------------------------------------- sarif

def test_sarif_carries_metadata_for_concurrency_rules():
    from repro.devtools.sarif import to_sarif

    rules = to_sarif([])["runs"][0]["tool"]["driver"]["rules"]
    by_id = {rule["id"]: rule for rule in rules}
    for rule_id in ("RPR011", "RPR012"):
        assert by_id[rule_id]["shortDescription"]["text"]


# ---------------------------------------------------------------- explain

def test_explain_prints_rule_documentation(capsys):
    assert main(["--explain", "RPR011"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("RPR011")
    assert "thread" in out.lower()
    assert main(["--explain", "rpr012"]) == 0
    assert "RPR012" in capsys.readouterr().out


def test_explain_covers_every_registered_rule(capsys):
    from repro.devtools import all_checkers

    for checker in all_checkers():
        assert main(["--explain", checker.rule]) == 0
        out = capsys.readouterr().out
        # Every rule ships real documentation, not just its summary line.
        assert out.startswith(checker.rule)
        assert len(out.strip().splitlines()) > 1


def test_explain_unknown_rule_exits_2(capsys):
    assert main(["--explain", "RPR999"]) == 2
    assert "unknown rule" in capsys.readouterr().err
