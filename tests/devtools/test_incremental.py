"""Incremental cache: warm runs skip, edits re-analyze, reuse is sound."""

from __future__ import annotations

import json

from repro.devtools.cli import main
from repro.devtools.driver import run_lint

FILES = {
    "pkg/a.py": "def f(x):\n    return x + 1\n",
    "pkg/b.py": (
        "import random\n\n"
        "def roll():\n"
        "    return random.random()\n"
    ),
}


def test_warm_run_skips_every_unchanged_file(make_tree, tmp_path):
    tree = make_tree(FILES)
    cache = tmp_path / "cache.json"
    cold = run_lint([tree], cache_path=cache)
    assert cold.files_analyzed > 0 and cold.files_skipped == 0
    warm = run_lint([tree], cache_path=cache)
    assert warm.files_analyzed == 0
    assert warm.files_skipped == cold.files_analyzed
    assert warm.diagnostics == cold.diagnostics


def test_edited_file_is_reanalyzed_alone(make_tree, tmp_path):
    tree = make_tree(FILES)
    cache = tmp_path / "cache.json"
    run_lint([tree], cache_path=cache)
    (tree / "pkg" / "a.py").write_text(
        "def f(x):\n    return x + 2\n", encoding="utf-8")
    warm = run_lint([tree], cache_path=cache)
    assert warm.files_analyzed == 1


def test_cached_entries_serve_any_rule_selection(make_tree, tmp_path):
    tree = make_tree(FILES)
    cache = tmp_path / "cache.json"
    run_lint([tree], rules=["RPR002"], cache_path=cache)
    warm = run_lint([tree], rules=["RPR001"], cache_path=cache)
    assert warm.files_analyzed == 0
    assert {d.rule for d in warm.diagnostics} == {"RPR001"}


def test_cached_noqa_still_suppresses(make_tree, tmp_path):
    files = dict(FILES)
    files["pkg/b.py"] = (
        "import random\n\n"
        "def roll():\n"
        "    return random.random()  # repro: noqa[RPR001]\n"
    )
    tree = make_tree(files)
    cache = tmp_path / "cache.json"
    cold = run_lint([tree], rules=["RPR001"], cache_path=cache)
    warm = run_lint([tree], rules=["RPR001"], cache_path=cache)
    assert warm.files_analyzed == 0
    assert cold.diagnostics == warm.diagnostics == []


def test_corrupt_cache_degrades_to_cold_run(make_tree, tmp_path):
    tree = make_tree(FILES)
    cache = tmp_path / "cache.json"
    run_lint([tree], cache_path=cache)
    cache.write_text("{not json", encoding="utf-8")
    rerun = run_lint([tree], cache_path=cache)
    assert rerun.files_skipped == 0
    # and the cache healed itself for the next run
    healed = run_lint([tree], cache_path=cache)
    assert healed.files_analyzed == 0


def test_stale_analysis_version_invalidates_everything(make_tree, tmp_path):
    tree = make_tree(FILES)
    cache = tmp_path / "cache.json"
    run_lint([tree], cache_path=cache)
    payload = json.loads(cache.read_text(encoding="utf-8"))
    payload["analysis_version"] = "0" * 64
    cache.write_text(json.dumps(payload), encoding="utf-8")
    rerun = run_lint([tree], cache_path=cache)
    assert rerun.files_skipped == 0


def test_interprocedural_rules_fire_from_cached_summaries(make_tree,
                                                          tmp_path):
    tree = make_tree({
        "pkg/graph.py": "class StageSpec:\n    pass\n",
        "pkg/stages.py": (
            "from pkg.graph import StageSpec\n"
            "import pkg.work\n"
            "STAGES = (StageSpec(name='one', inputs=(), outputs=('a',), "
            "fan_out=None, func=pkg.work.run_one),)\n"
        ),
        "pkg/work.py": (
            "import time\n\n"
            "def run_one(data):\n"
            "    return data, time.time()\n"
        ),
        "pkg/cache.py": (
            "CODE_VERSION_PACKAGES = ('graph.py', 'stages.py', 'work.py', "
            "'cache.py')\n"
        ),
    })
    cache = tmp_path / "cache.json"
    cold = run_lint([tree], rules=["RPR006"], cache_path=cache)
    warm = run_lint([tree], rules=["RPR006"], cache_path=cache)
    assert warm.files_analyzed == 0
    assert [d.rule for d in cold.diagnostics] == ["RPR006"]
    assert warm.diagnostics == cold.diagnostics


def test_order_taint_fires_from_cached_summaries_and_tracks_edits(
        make_tree, tmp_path):
    tree = make_tree({
        "pkg/digest.py": "def results_digest(results):\n    return 0\n",
        "pkg/run.py": (
            "from pkg import digest\n\n"
            "def run(entries):\n"
            "    tags = set(entries)\n"
            "    return digest.results_digest(tags)\n"),
    })
    cache = tmp_path / "cache.json"
    cold = run_lint([tree], rules=["RPR009"], cache_path=cache)
    assert [d.rule for d in cold.diagnostics] == ["RPR009"]
    # the project pass re-runs over cached FunctionOrderSummary objects
    warm = run_lint([tree], rules=["RPR009"], cache_path=cache)
    assert warm.files_analyzed == 0
    assert warm.diagnostics == cold.diagnostics
    # inserting a sort barrier re-analyzes only that file and clears it
    (tree / "pkg" / "run.py").write_text(
        "from pkg import digest\n\n"
        "def run(entries):\n"
        "    tags = sorted(set(entries))\n"
        "    return digest.results_digest(tags)\n", encoding="utf-8")
    fixed = run_lint([tree], rules=["RPR009"], cache_path=cache)
    assert fixed.files_analyzed == 1
    assert fixed.diagnostics == []


def test_wire_contracts_checked_fresh_under_warm_cache(make_tree, tmp_path):
    shard = (
        "class ShardResult:\n"
        '    __wire_contract__ = "shard-result"\n\n'
        "    shard_index: int\n"
    )
    tree = make_tree({"pkg/workers.py": shard})
    contracts = tmp_path / "wire-contracts.json"
    assert main(["--contracts", str(contracts), "--update-contracts",
                 str(tree)]) == 0
    cache = tmp_path / "cache.json"
    cold = run_lint([tree], rules=["RPR010"], cache_path=cache,
                    contracts_path=contracts)
    assert cold.diagnostics == []
    # editing the contract file alone flips the warm run to a finding:
    # wire decls come from cached summaries, the contract is re-read
    payload = json.loads(contracts.read_text(encoding="utf-8"))
    payload["contracts"]["shard-result"]["spec"]["fields"] = []
    contracts.write_text(json.dumps(payload), encoding="utf-8")
    warm = run_lint([tree], rules=["RPR010"], cache_path=cache,
                    contracts_path=contracts)
    assert warm.files_analyzed == 0
    assert [d.rule for d in warm.diagnostics] == ["RPR010"]
    assert "has drifted" in warm.diagnostics[0].message


def test_cli_reports_skip_counts(make_tree, tmp_path, capsys):
    tree = make_tree({"pkg/a.py": "def f():\n    return 1\n"})
    cache = tmp_path / "cache.json"
    assert main(["--cache", str(cache), str(tree)]) == 0
    cold_err = capsys.readouterr().err
    assert "skipped 0 unchanged" in cold_err
    assert main(["--cache", str(cache), str(tree)]) == 0
    warm_err = capsys.readouterr().err
    assert "analyzed 0 file(s)" in warm_err
