"""Per-rule tests for the repro.devtools checkers.

Each rule gets three fixtures: a snippet that triggers it, a clean snippet
that must not, and a snippet where a ``# repro: noqa[RULE]`` comment
suppresses the finding.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools import all_checkers, lint_source


def lint(source: str, module: str = "repro.sim.example",
         rules: list[str] | None = None, is_package: bool = False):
    return lint_source(textwrap.dedent(source), path="example.py",
                       module=module, rules=rules, is_package=is_package)


def rules_of(diagnostics) -> set[str]:
    return {d.rule for d in diagnostics}


def test_registry_has_all_twelve_rules():
    assert [c.rule for c in all_checkers()] == [
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
        "RPR006", "RPR007", "RPR008", "RPR009", "RPR010",
        "RPR011", "RPR012"]


# ---------------------------------------------------------------- RPR001

def test_rpr001_flags_global_rng_call():
    findings = lint("""
        import random

        def jitter():
            return random.random()
    """, rules=["RPR001"])
    assert rules_of(findings) == {"RPR001"}
    assert "global RNG" in findings[0].message


def test_rpr001_flags_unseeded_random_and_from_import():
    findings = lint("""
        import random
        from random import randint

        def make():
            return random.Random()
    """, rules=["RPR001"])
    assert len(findings) == 2
    assert any("unseeded" in d.message for d in findings)
    assert any("from random import randint" in d.message for d in findings)


def test_rpr001_flags_wall_clock_in_sim_layer():
    findings = lint("""
        import time

        def stamp():
            return time.time()
    """, module="repro.sim.timeline", rules=["RPR001"])
    assert rules_of(findings) == {"RPR001"}
    assert "wall clock" in findings[0].message


def test_rpr001_flags_perf_counter_ns():
    # the _ns variant of an already-forbidden call must not slip through
    findings = lint("""
        import time

        def stamp():
            return time.perf_counter_ns()
    """, module="repro.core.changes", rules=["RPR001"])
    assert rules_of(findings) == {"RPR001"}
    assert "wall clock" in findings[0].message


def test_rpr001_clean_seeded_rng_and_annotations():
    findings = lint("""
        import random

        def draw(rng: random.Random) -> float:
            return rng.random()

        def make(seed: int) -> random.Random:
            return random.Random(seed)
    """, rules=["RPR001"])
    assert findings == []


def test_rpr001_wall_clock_allowed_outside_sim_core():
    findings = lint("""
        import time

        def stamp():
            return time.time()
    """, module="repro.experiments.cli", rules=["RPR001"])
    assert findings == []


def test_rpr001_rng_home_is_exempt():
    findings = lint("""
        import random

        def substream(seed):
            return random.Random(seed)

        FALLBACK = random.random()
    """, module="repro.util.rng", rules=["RPR001"])
    assert findings == []


def test_rpr001_noqa_suppresses():
    findings = lint("""
        import random

        def jitter():
            return random.random()  # repro: noqa[RPR001]
    """, rules=["RPR001"])
    assert findings == []


# ---------------------------------------------------------------- RPR002

def test_rpr002_flags_magic_hour_literal():
    findings = lint("""
        def age_hours(seconds):
            return seconds / 3600.0
    """, rules=["RPR002"])
    assert rules_of(findings) == {"RPR002"}
    assert "HOUR" in findings[0].message


def test_rpr002_flags_day_multiples_and_comparisons():
    findings = lint("""
        def is_long(duration):
            return duration > 86400 * 2

        def one_year():
            return 365 * 86400
    """, rules=["RPR002"])
    assert len(findings) == 2
    assert all("DAY" in d.message for d in findings)


def test_rpr002_clean_constants_and_small_numbers():
    findings = lint("""
        from repro.util.timeutil import DAY, HOUR

        def window(duration):
            return min(30 * DAY, duration / 10) + 2 * HOUR + 59
    """, rules=["RPR002"])
    assert findings == []


def test_rpr002_ignores_literals_outside_arithmetic():
    # A bare assignment or argument is not "time arithmetic": the paper's
    # probe counts, port numbers etc. may legitimately be multiples of 60.
    findings = lint("""
        PROBES = 10980

        def listen(port=8100, backlog=120):
            return (port, backlog)
    """, rules=["RPR002"])
    assert findings == []


def test_rpr002_timeutil_module_is_exempt():
    findings = lint("""
        MINUTE = 60.0
        HOUR = 60.0 * 60.0
    """, module="repro.util.timeutil", rules=["RPR002"])
    assert findings == []


def test_rpr002_noqa_suppresses():
    findings = lint("""
        def age_hours(seconds):
            return seconds / 3600.0  # repro: noqa[RPR002]
    """, rules=["RPR002"])
    assert findings == []


# ---------------------------------------------------------------- RPR003

def test_rpr003_rejects_util_importing_core():
    findings = lint("""
        from repro.core.pipeline import AnalysisPipeline
    """, module="repro.util.helpers", rules=["RPR003"])
    assert rules_of(findings) == {"RPR003"}
    assert "upward import" in findings[0].message
    assert "repro.util" in findings[0].message
    assert "repro.core" in findings[0].message


def test_rpr003_rejects_sim_importing_core():
    findings = lint("""
        def lazy():
            from repro.core.pipeline import AnalysisPipeline
            return AnalysisPipeline
    """, module="repro.sim.io", rules=["RPR003"])
    assert rules_of(findings) == {"RPR003"}


def test_rpr003_rejects_sibling_import_between_dhcp_and_ppp():
    findings = lint("""
        from repro.ppp.session import PppoeConcentrator
    """, module="repro.dhcp.server", rules=["RPR003"])
    assert rules_of(findings) == {"RPR003"}
    assert "siblings" in findings[0].message


def test_rpr003_rejects_runtime_import_of_devtools():
    findings = lint("""
        from repro.devtools import lint_paths
    """, module="repro.core.pipeline", rules=["RPR003"])
    assert rules_of(findings) == {"RPR003"}


def test_rpr003_allows_downward_and_same_layer_imports():
    findings = lint("""
        import math
        from repro import errors
        from repro.atlas.types import ProbeMeta
        from repro.isp.spec import IspSpec
        from repro.sim.world import WorldData
        from repro.util.timeutil import DAY
    """, module="repro.sim.io", rules=["RPR003"])
    assert findings == []


def test_rpr003_resolves_relative_imports():
    findings = lint("""
        from ..core import pipeline
    """, module="repro.util.helpers", rules=["RPR003"])
    assert rules_of(findings) == {"RPR003"}


def test_rpr003_noqa_suppresses():
    findings = lint("""
        from repro.core.pipeline import AnalysisPipeline  # repro: noqa[RPR003]
    """, module="repro.util.helpers", rules=["RPR003"])
    assert findings == []


# ---------------------------------------------------------------- RPR004

def test_rpr004_flags_raise_exception_and_bare_except():
    findings = lint("""
        def run():
            try:
                raise Exception("boom")
            except:
                pass
    """, rules=["RPR004"])
    assert len(findings) == 2
    assert any("type information" in d.message for d in findings)
    assert any("bare except" in d.message for d in findings)


def test_rpr004_flags_blanket_except_exception():
    findings = lint("""
        def run(task):
            try:
                task()
            except Exception:
                return None
    """, rules=["RPR004"])
    assert rules_of(findings) == {"RPR004"}


def test_rpr004_clean_domain_errors():
    findings = lint("""
        from repro.errors import ParseError, ReproError

        def parse(text):
            try:
                return int(text)
            except ValueError:
                raise ParseError("bad record %r" % (text,))

        def guard(callback):
            try:
                return callback()
            except ReproError:
                raise
    """, rules=["RPR004"])
    assert findings == []


def test_rpr004_noqa_suppresses():
    findings = lint("""
        def main():
            try:
                return 0
            except Exception:  # repro: noqa[RPR004]
                return 1
    """, rules=["RPR004"])
    assert findings == []


# ---------------------------------------------------------------- RPR005

def test_rpr005_flags_unfrozen_value_object():
    findings = lint("""
        from dataclasses import dataclass

        @dataclass
        class ProbeMeta:
            probe_id: int
    """, module="repro.atlas.types", rules=["RPR005"])
    assert rules_of(findings) == {"RPR005"}
    assert "frozen=True" in findings[0].message


def test_rpr005_flags_mutable_field_default():
    findings = lint("""
        from dataclasses import dataclass, field

        @dataclass
        class Accumulator:
            values: list = field(default=list())
            table: dict = dict()
    """, rules=["RPR005"])
    assert len(findings) == 2
    assert all("default_factory" in d.message for d in findings)


def test_rpr005_clean_frozen_and_factory():
    findings = lint("""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ProbeMeta:
            probe_id: int
    """, module="repro.atlas.types", rules=["RPR005"])
    assert findings == []

    findings = lint("""
        from dataclasses import dataclass, field

        @dataclass
        class Accumulator:
            values: list = field(default_factory=list)
    """, rules=["RPR005"])
    assert findings == []


def test_rpr005_mutable_state_holders_allowed_outside_value_modules():
    findings = lint("""
        from dataclasses import dataclass

        @dataclass
        class Session:
            probe_id: int
            connected: bool = False
    """, module="repro.sim.timeline", rules=["RPR005"])
    assert findings == []


def test_rpr005_noqa_suppresses():
    findings = lint("""
        from dataclasses import dataclass

        @dataclass
        class ProbeMeta:  # repro: noqa[RPR005]
            probe_id: int
    """, module="repro.atlas.types", rules=["RPR005"])
    assert findings == []


# ------------------------------------------------------- driver behaviour

def test_blanket_noqa_suppresses_every_rule():
    findings = lint("""
        import random

        def jitter():
            return random.random() / 3600  # repro: noqa
    """)
    assert findings == []


def test_syntax_error_reported_as_rpr000():
    findings = lint("def broken(:\n    pass\n")
    assert rules_of(findings) == {"RPR000"}


def test_diagnostics_are_sorted_and_structured():
    findings = lint("""
        import random

        def bad():
            try:
                return random.random() + 3600
            except:
                return None
    """)
    assert findings == sorted(findings)
    payload = findings[0].to_dict()
    assert set(payload) == {"path", "line", "col", "rule", "severity", "message"}
    rendered = findings[0].format()
    assert "example.py:" in rendered and findings[0].rule in rendered


def test_unknown_rule_subset_raises():
    with pytest.raises(KeyError):
        lint("x = 1", rules=["RPR999"])
