"""Trigger / clean / noqa tests for RPR009 (order-sensitivity dataflow)."""

from __future__ import annotations

from repro.devtools.driver import run_lint


def rules_of(result) -> set[str]:
    return {d.rule for d in result.diagnostics}


DIGEST = "def results_digest(results):\n    return str(results)\n"


def digest_tree(run_body: str,
                helpers: str | None = None) -> dict[str, str]:
    files = {"pkg/digest.py": DIGEST, "pkg/run.py": run_body}
    if helpers is not None:
        files["pkg/helpers.py"] = helpers
    return files


# -------------------------------------------------------------- triggers

def test_set_comp_through_two_helpers_into_digest(make_tree):
    # The acceptance fixture: a set comprehension built in one helper,
    # laundered through a second, digested by the caller — three
    # functions, one witness chain.
    tree = make_tree(digest_tree(
        "from pkg import digest, helpers\n\n"
        "def run(entries):\n"
        "    payload = helpers.pack(helpers.build(entries))\n"
        "    return digest.results_digest(payload)\n",
        helpers=(
            "def build(entries):\n"
            "    return {e for e in entries}\n\n"
            "def pack(items):\n"
            "    return list(items)\n"),
    ))
    result = run_lint([tree], rules=["RPR009"])
    assert rules_of(result) == {"RPR009"}
    [diagnostic] = result.diagnostics
    assert diagnostic.path.endswith("run.py")
    message = diagnostic.message
    # the full interprocedural witness chain, source to sink
    assert "pkg.run.run" in message
    assert "pkg.helpers.pack (argument 'items')" in message
    assert "pkg.helpers.build" in message
    assert "set comprehension" in message
    assert "digest canonicalization" in message
    assert " -> " in message


def test_sorted_barrier_silences_the_same_flow(make_tree):
    tree = make_tree(digest_tree(
        "from pkg import digest, helpers\n\n"
        "def run(entries):\n"
        "    payload = helpers.pack(sorted(helpers.build(entries)))\n"
        "    return digest.results_digest(payload)\n",
        helpers=(
            "def build(entries):\n"
            "    return {e for e in entries}\n\n"
            "def pack(items):\n"
            "    return list(items)\n"),
    ))
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


def test_sort_method_and_ordered_merge_are_barriers(make_tree):
    tree = make_tree(digest_tree(
        "from pkg import digest\n"
        "from repro.util.ordering import ordered_merge\n\n"
        "def run_sorted(entries):\n"
        "    names = list(set(entries))\n"
        "    names.sort()\n"
        "    return digest.results_digest(names)\n\n"
        "def run_merged(chunks):\n"
        "    return digest.results_digest(ordered_merge(*chunks))\n",
    ))
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


def test_listdir_accumulation_loop_into_cache_store(make_tree):
    tree = make_tree({"pkg/run.py": (
        "import os\n\n"
        "def collect(cache, root):\n"
        "    out = {}\n"
        "    for name in os.listdir(root):\n"
        "        out[name] = len(name)\n"
        "    cache.store('key', out)\n"
    )})
    result = run_lint([tree], rules=["RPR009"])
    assert rules_of(result) == {"RPR009"}
    message = result.diagnostics[0].message
    assert "os.listdir() directory order" in message
    assert "artifact cache write" in message


def test_path_glob_into_json_dump(make_tree):
    tree = make_tree({"pkg/run.py": (
        "import json\n"
        "from pathlib import Path\n\n"
        "def manifest(root, stream):\n"
        "    names = [p.name for p in Path(root).glob('*.pkl')]\n"
        "    json.dump(names, stream)\n"
    )})
    result = run_lint([tree], rules=["RPR009"])
    assert rules_of(result) == {"RPR009"}
    message = result.diagnostics[0].message
    assert ".glob() directory order" in message
    assert "JSON serialization" in message


def test_tainted_argument_reaches_callee_sink(make_tree):
    # Downward direction: the sink lives in the callee, the unordered
    # value in the caller; the finding anchors at the call site.
    tree = make_tree({
        "pkg/ship.py": (
            "import json\n\n"
            "def ship(payload):\n"
            "    return json.dumps(payload)\n"),
        "pkg/run.py": (
            "from pkg import ship\n\n"
            "def run(entries):\n"
            "    tags = set(entries)\n"
            "    return ship.ship(tags)\n"),
    })
    result = run_lint([tree], rules=["RPR009"])
    assert rules_of(result) == {"RPR009"}
    [diagnostic] = result.diagnostics
    assert diagnostic.path.endswith("run.py")
    assert "pkg.ship.ship (argument 'payload')" in diagnostic.message
    assert "set() (line 4)" in diagnostic.message


def test_shard_result_payload_is_a_sink(make_tree):
    tree = make_tree({
        "pkg/workers.py": (
            "class ShardResult:\n"
            "    def __init__(self, payload):\n"
            "        self.payload = payload\n"),
        "pkg/run.py": (
            "from pkg.workers import ShardResult\n\n"
            "def task(paths):\n"
            "    return ShardResult(frozenset(paths))\n"),
    })
    result = run_lint([tree], rules=["RPR009"])
    assert rules_of(result) == {"RPR009"}
    assert "ShardResult payload construction" in result.diagnostics[0].message


# ----------------------------------------------------------------- clean

def test_subscript_read_of_tainted_dict_is_clean(make_tree):
    # The canonical fix — iterate sorted keys, index by key — must stay
    # silent even though the source dict is order-tainted.
    tree = make_tree({"pkg/run.py": (
        "import json\n\n"
        "def canon(tags):\n"
        "    raw = set(tags)\n"
        "    out = {}\n"
        "    for key in sorted(raw):\n"
        "        out[key] = True\n"
        "    return json.dumps(out)\n"
    )})
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


def test_scalar_reduction_of_set_is_clean(make_tree):
    tree = make_tree(digest_tree(
        "from pkg import digest\n\n"
        "def run(entries):\n"
        "    return digest.results_digest(len(set(entries)))\n",
    ))
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


def test_rebinding_sanitizes(make_tree):
    # x is tainted, digested (finding), then rebound clean — exactly one
    # diagnostic, proving assignment kills old taint and the sequential
    # pass does not smear late sanitization backwards.
    tree = make_tree(digest_tree(
        "from pkg import digest\n\n"
        "def run(entries):\n"
        "    names = set(entries)\n"
        "    first = digest.results_digest(names)\n"
        "    names = sorted(entries)\n"
        "    return first, digest.results_digest(names)\n",
    ))
    result = run_lint([tree], rules=["RPR009"])
    assert len(result.diagnostics) == 1
    assert result.diagnostics[0].line == 5


def test_membership_test_on_set_is_clean(make_tree):
    tree = make_tree(digest_tree(
        "from pkg import digest\n\n"
        "def run(entries, wanted):\n"
        "    keep = [e for e in sorted(entries) if e in set(wanted)]\n"
        "    return digest.results_digest(keep)\n",
    ))
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


# ------------------------------------------------------------------ noqa

def test_noqa_on_sink_line_suppresses(make_tree):
    tree = make_tree(digest_tree(
        "from pkg import digest\n\n"
        "def run(entries):\n"
        "    tags = set(entries)\n"
        "    return digest.results_digest(tags)"
        "  # repro: noqa[RPR009] -- singleton set\n",
    ))
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


def test_noqa_on_call_site_suppresses_downward_finding(make_tree):
    tree = make_tree({
        "pkg/ship.py": (
            "import json\n\n"
            "def ship(payload):\n"
            "    return json.dumps(payload)\n"),
        "pkg/run.py": (
            "from pkg import ship\n\n"
            "def run(entries):\n"
            "    tags = set(entries)\n"
            "    return ship.ship(tags)"
            "  # repro: noqa[RPR009] -- ship sorts internally\n"),
    })
    assert run_lint([tree], rules=["RPR009"]).diagnostics == []


# -------------------------------------------------------------- dogfood

def test_real_tree_is_rpr009_clean():
    from pathlib import Path

    import repro

    result = run_lint([Path(repro.__file__).resolve().parent],
                      rules=["RPR009"])
    assert result.diagnostics == [], [d.format() for d in result.diagnostics]
