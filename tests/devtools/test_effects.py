"""Effect-lattice inference: catalogs, propagation, conservatism."""

from __future__ import annotations

import pytest

from repro.devtools.effects import Effect, EffectAnalysis, render_chain


def analyze(make_project, files):
    project = make_project(files)
    return project, EffectAnalysis(project)


def test_pure_value_code_infers_pure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "import math\n\n"
            "def norm(xs):\n"
            "    total = math.sqrt(sum(x * x for x in xs))\n"
            "    return [x / total for x in xs]\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.norm") is Effect.PURE


@pytest.mark.parametrize("call, effect", [
    ("time.time()", Effect.NONDETERMINISTIC),
    ("random.random()", Effect.NONDETERMINISTIC),
    ("os.urandom(8)", Effect.NONDETERMINISTIC),
    ("os.getenv('HOME')", Effect.READS_ENV),
    ("open('x')", Effect.IO),
])
def test_impure_catalog_seeds(make_project, tmp_path, call, effect):
    name = "m_%s" % abs(hash(call))
    _, analysis = analyze(make_project, {
        "pkg/%s.py" % name: (
            "import os, time, random\n\n"
            "def f():\n"
            "    return %s\n" % call
        ),
    })
    assert analysis.effect_of("pkg.%s.f" % name) is effect


def test_effects_propagate_through_call_chain(make_project):
    _, analysis = analyze(make_project, {
        "pkg/a.py": "from pkg import b\n\ndef top():\n    return b.mid()\n",
        "pkg/b.py": (
            "import time\n\n"
            "def mid():\n    return leaf()\n\n"
            "def leaf():\n    return time.time()\n"
        ),
    })
    assert analysis.effect_of("pkg.a.top") is Effect.NONDETERMINISTIC
    chain = render_chain(analysis.explain("pkg.a.top"))
    assert "pkg.a.top" in chain and "pkg.b.leaf" in chain
    assert "time.time()" in chain


def test_recursive_cycle_of_pure_functions_stays_pure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/cycle.py": (
            "def even(n):\n"
            "    return True if n == 0 else odd(n - 1)\n\n"
            "def odd(n):\n"
            "    return False if n == 0 else even(n - 1)\n"
        ),
    })
    assert analysis.effect_of("pkg.cycle.even") is Effect.PURE
    assert analysis.effect_of("pkg.cycle.odd") is Effect.PURE


def test_impurity_in_a_cycle_infects_the_whole_cycle(make_project):
    _, analysis = analyze(make_project, {
        "pkg/cycle.py": (
            "import time\n\n"
            "def a(n):\n    return b(n)\n\n"
            "def b(n):\n"
            "    if n > 0:\n"
            "        return a(n - 1)\n"
            "    return time.time()\n"
        ),
    })
    assert analysis.effect_of("pkg.cycle.a") is Effect.NONDETERMINISTIC


def test_dynamic_dispatch_falls_back_to_impure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "def apply(fn, x):\n"
            "    return fn(x)\n"
        ),
    })
    # unknown -> impure: a computed callable could be anything
    assert analysis.effect_of("pkg.mod.apply") is Effect.NONDETERMINISTIC


def test_unresolved_method_falls_back_to_impure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "def poke(obj):\n"
            "    return obj.frobnicate()\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.poke") is Effect.NONDETERMINISTIC


def test_builtin_method_vocabulary_is_pure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "def fmt(items):\n"
            "    out = []\n"
            "    for item in sorted(items):\n"
            "        out.append(str(item).strip().lower())\n"
            "    return ', '.join(out)\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.fmt") is Effect.PURE


def test_lru_cache_preserves_purity(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "import functools\n\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def fib(n):\n"
            "    return n if n < 2 else fib(n - 1) + fib(n - 2)\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.fib") is Effect.PURE


def test_unknown_decorator_is_conservative(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "from somewhere import magic\n\n"
            "@magic\n"
            "def f(x):\n"
            "    return x\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.f") is Effect.NONDETERMINISTIC


def test_project_decorator_folds_its_effect_in(make_project):
    _, analysis = analyze(make_project, {
        "pkg/deco.py": (
            "import time\n\n"
            "def stamp(fn):\n"
            "    fn.at = time.time()\n"
            "    return fn\n"
        ),
        "pkg/mod.py": (
            "from pkg.deco import stamp\n\n"
            "@stamp\n"
            "def f(x):\n"
            "    return x\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.f") is Effect.NONDETERMINISTIC


def test_module_global_write_is_mutates_global(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "_REGISTRY = {}\n\n"
            "def install(key, value):\n"
            "    _REGISTRY[key] = value\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.install") is Effect.MUTATES_GLOBAL


def test_local_mutation_is_pure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "def tally(items):\n"
            "    counts = {}\n"
            "    for item in items:\n"
            "        counts[item] = counts.get(item, 0) + 1\n"
            "    return counts\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.tally") is Effect.PURE


def test_method_dispatch_joins_reachable_class_only(make_project):
    files = {
        "pkg/caller.py": (
            "from pkg.near import Near\n\n"
            "def go():\n"
            "    return Near().run()\n"
        ),
        "pkg/near.py": (
            "class Near:\n"
            "    def run(self):\n"
            "        return 1\n"
        ),
        # same method name, impure, but never importable from caller
        "pkg/far.py": (
            "import time\n\n"
            "class Far:\n"
            "    def run(self):\n"
            "        return time.time()\n"
        ),
    }
    project = make_project(files)
    analysis = EffectAnalysis(project)
    assert analysis.effect_of("pkg.far.Far.run") is Effect.NONDETERMINISTIC
    assert analysis.effect_of("pkg.caller.go") is Effect.PURE


def test_method_dispatch_joins_impure_candidate_in_closure(make_project):
    _, analysis = analyze(make_project, {
        "pkg/caller.py": (
            "from pkg.sink import Sink\n\n"
            "def go(sink):\n"
            "    return sink.run()\n"
        ),
        "pkg/sink.py": (
            "class Sink:\n"
            "    def run(self):\n"
            "        with open('x') as f:\n"
            "            return f.read()\n"
        ),
    })
    assert analysis.effect_of("pkg.caller.go") is Effect.IO


def test_classmethod_cls_call_resolves_to_own_constructor(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "class Box:\n"
            "    def __init__(self, value):\n"
            "        self.value = value\n\n"
            "    @classmethod\n"
            "    def of(cls, value):\n"
            "        return cls(value)\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.Box.of") is Effect.PURE


def test_tz_aware_fromtimestamp_is_pure_naive_reads_env(make_project):
    _, analysis = analyze(make_project, {
        "pkg/mod.py": (
            "import datetime as _dt\n\n"
            "def aware(ts):\n"
            "    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)\n\n"
            "def naive(ts):\n"
            "    return _dt.datetime.fromtimestamp(ts)\n"
        ),
    })
    assert analysis.effect_of("pkg.mod.aware") is Effect.PURE
    assert analysis.effect_of("pkg.mod.naive") is Effect.READS_ENV
