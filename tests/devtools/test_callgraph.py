"""Call-graph construction: summaries, resolution, reachability."""

from __future__ import annotations

from repro.devtools.callgraph import FileSummary


PKG = {
    "pkg/__init__.py": "from pkg.api import entry\n",
    "pkg/api.py": (
        "from pkg import helpers\n"
        "from pkg.helpers import double\n\n"
        "def entry(x):\n"
        "    return helpers.double(x) + double(x)\n"
    ),
    "pkg/helpers.py": (
        "def double(x):\n"
        "    return x * 2\n"
    ),
}


def test_dotted_and_from_imports_resolve_to_same_function(make_project):
    project = make_project(PKG)
    entry = project.summaries["pkg.api"].functions["entry"]
    targets = set()
    for site in entry.calls:
        resolved = project.resolve_callable(site.target)
        assert resolved is not None
        targets.add(resolved)
    assert targets == {("function", "pkg.helpers.double")}


def test_reexport_through_package_init_resolves(make_project):
    project = make_project(PKG)
    assert project.resolve_callable("pkg.entry") == \
        ("function", "pkg.api.entry")


def test_relative_imports_resolve(make_project):
    project = make_project({
        "pkg/a.py": "from . import b\n\ndef f():\n    return b.g()\n",
        "pkg/b.py": "def g():\n    return 1\n",
    })
    site = project.summaries["pkg.a"].functions["f"].calls[0]
    assert project.resolve_callable(site.target) == ("function", "pkg.b.g")


def test_import_cycle_reachability_terminates(make_project):
    project = make_project({
        "pkg/a.py": "import pkg.b\n",
        "pkg/b.py": "import pkg.c\n",
        "pkg/c.py": "import pkg.a\n",
    })
    closure = project.reachable_modules(["pkg.a"])
    assert {"pkg.a", "pkg.b", "pkg.c"} <= set(closure)
    chain = project.import_chain(closure, "pkg.c")
    assert chain == ["pkg.a", "pkg.b", "pkg.c"]


def test_root_facade_excluded_from_closure(make_project):
    project = make_project({
        "pkg/__init__.py": "from pkg.heavy import everything\n",
        "pkg/light.py": "X = 1\n",
        "pkg/heavy.py": "def everything():\n    return 0\n",
    })
    assert project.root_packages() == frozenset({"pkg"})
    closure = project.reachable_modules(
        ["pkg.light"], exclude=project.root_packages())
    # without the exclusion, pkg.light -> pkg (ancestor) -> pkg.heavy
    assert set(closure) == {"pkg.light"}


def test_stage_decls_found_by_keyword_and_position(make_project):
    project = make_project({
        "pkg/stages.py": (
            "from pkg.graph import StageSpec\n"
            "import pkg.work\n"
            "STAGES = (\n"
            "    StageSpec(name='one', inputs=(), outputs=('a',),\n"
            "              fan_out=None, func=pkg.work.run_one),\n"
            "    StageSpec('two', (), ('b',), None, pkg.work.run_two),\n"
            ")\n"
        ),
        "pkg/graph.py": "class StageSpec:\n    pass\n",
        "pkg/work.py": (
            "def run_one(data):\n    return data\n\n"
            "def run_two(data):\n    return data\n"
        ),
    })
    decls = project.summaries["pkg.stages"].stage_decls
    assert [(d.stage, d.func) for d in decls] == [
        ("one", "pkg.work.run_one"), ("two", "pkg.work.run_two")]


def test_code_version_decl_captures_entries_and_line(make_project):
    project = make_project({
        "pkg/cache.py": (
            "CODE_VERSION_PACKAGES = ('errors.py', 'util',\n"
            "                         'core')\n"
        ),
    })
    decl = project.summaries["pkg.cache"].code_version_decl
    assert decl == (("errors.py", "util", "core"), 1)


def test_pool_sites_initializer_and_unpicklable_tasks(make_project):
    project = make_project({
        "pkg/exec.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import pkg.work\n\n"
            "def run(shards):\n"
            "    pool = ProcessPoolExecutor(\n"
            "        initializer=pkg.work.init, initargs=())\n"
            "    pool.map(lambda s: s, shards)\n"
            "    pool.map(pkg.work.task, shards)\n"
            "    local = pkg.work.task\n"
            "    pool.map(local, shards)\n"
        ),
        "pkg/work.py": (
            "def init():\n    pass\n\n"
            "def task(s):\n    return s\n"
        ),
    })
    sites = project.summaries["pkg.exec"].pool_sites
    roles = sorted((s.role, s.target) for s in sites)
    # the local-variable task is skipped (nothing static to check), the
    # lambda and the module-level reference are both recorded
    assert roles == [
        ("initializer", "pkg.work.init"),
        ("task", "<lambda>"),
        ("task", "pkg.work.task"),
    ]


def test_global_writes_recorded_with_global_statement(make_project):
    project = make_project({
        "pkg/state.py": (
            "_CACHE = {}\n"
            "_MODE = None\n\n"
            "def install(mode):\n"
            "    global _MODE\n"
            "    _MODE = mode\n"
            "    _CACHE.clear()\n\n"
            "def pure_local():\n"
            "    cache = {}\n"
            "    cache.clear()\n"
            "    return cache\n"
        ),
    })
    functions = project.summaries["pkg.state"].functions
    assert sorted(name for name, _ in functions["install"].global_writes) == \
        ["_CACHE", "_MODE"]
    assert functions["pure_local"].global_writes == ()


def test_summary_round_trips_through_dict(make_project):
    project = make_project(PKG)
    for summary in project.summaries.values():
        clone = FileSummary.from_dict(summary.to_dict())
        assert clone == summary
