"""Self-lint: the shipped tree must be clean under its own static analysis.

This is the machine-checked architecture contract: any PR that introduces an
unseeded RNG, a magic time literal, an upward import, a generic raise or an
unfrozen value object fails this tier-1 test.  Run just this check with
``pytest -m lint``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.devtools import lint_paths
from repro.devtools.cli import main

SRC_REPRO = Path(repro.__file__).resolve().parent

pytestmark = pytest.mark.lint


def test_source_tree_is_lint_clean():
    findings = lint_paths([SRC_REPRO])
    assert findings == [], "repro-lint findings:\n%s" % "\n".join(
        d.format() for d in findings)


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(SRC_REPRO)]) == 0
    assert capsys.readouterr().out == ""


def test_cli_reports_deliberate_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random\n"
        "def jitter(base):\n"
        "    return base + random.random() * 3600\n",
        encoding="utf-8",
    )
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR002" in out

    assert main(["--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 2
    findings = payload["findings"]
    assert {entry["rule"] for entry in findings} == {"RPR001", "RPR002"}
    assert all(entry["path"] == str(bad) for entry in findings)


def test_cli_rule_subset_and_unknown_rule(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nX = random.random()\n", encoding="utf-8")
    assert main(["--rules", "rpr002", str(bad)]) == 0
    capsys.readouterr()
    assert main(["--rules", "RPR999", str(bad)]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule in out


def test_layering_rejects_util_to_core_import_on_disk(tmp_path, capsys):
    """End-to-end proof that the DAG rejects repro.util -> repro.core."""
    tree = tmp_path / "repro"
    (tree / "util").mkdir(parents=True)
    (tree / "core").mkdir()
    (tree / "__init__.py").write_text("", encoding="utf-8")
    (tree / "util" / "__init__.py").write_text("", encoding="utf-8")
    (tree / "core" / "__init__.py").write_text("", encoding="utf-8")
    (tree / "util" / "helpers.py").write_text(
        "from repro.core import pipeline\n", encoding="utf-8")

    findings = lint_paths([tree])
    layering = [d for d in findings if d.rule == "RPR003"]
    assert len(layering) == 1
    assert "upward import" in layering[0].message

    assert main([str(tree)]) == 1
    assert "RPR003" in capsys.readouterr().out
