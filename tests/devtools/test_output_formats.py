"""Output formats (JSON schema, SARIF) and the baseline workflow."""

from __future__ import annotations

import json

from repro.devtools.baseline import filter_new, load_baseline, write_baseline
from repro.devtools.cli import JSON_SCHEMA_VERSION, main
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.driver import run_lint
from repro.devtools.sarif import to_sarif

BAD = (
    "import random\n\n"
    "def roll():\n"
    "    return random.random()\n"
)


# ---------------------------------------------------------------- json

def test_json_output_carries_schema_version(make_tree, capsys):
    tree = make_tree({"pkg/bad.py": BAD})
    assert main(["--json", str(tree)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert {f["rule"] for f in payload["findings"]} == {"RPR001"}
    assert payload["files_analyzed"] >= 1


def test_format_json_equals_json_flag(make_tree, capsys):
    tree = make_tree({"pkg/bad.py": BAD})
    main(["--json", str(tree)])
    via_flag = capsys.readouterr().out
    main(["--format", "json", str(tree)])
    via_format = capsys.readouterr().out
    assert via_flag == via_format


def test_text_output_shape_unchanged(make_tree, capsys):
    tree = make_tree({"pkg/bad.py": BAD})
    assert main([str(tree)]) == 1
    out = capsys.readouterr().out
    line = out.splitlines()[0]
    # the stable pre-v2 shape: path:line:col: SEVERITY [RULE] message
    assert line.startswith(str(tree / "pkg" / "bad.py") + ":4:")
    assert "ERROR [RPR001]" in line


# ---------------------------------------------------------------- sarif

def test_sarif_structure_and_coordinates(make_tree):
    tree = make_tree({"pkg/bad.py": BAD})
    result = run_lint([tree])
    log = to_sarif(result.diagnostics)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                       "RPR006", "RPR007", "RPR008", "RPR009", "RPR010",
                       "RPR011", "RPR012"]
    [finding] = run["results"]
    assert finding["ruleId"] == "RPR001"
    assert finding["level"] == "error"
    region = finding["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 4
    assert region["startColumn"] >= 1  # SARIF columns are 1-based


def test_cli_writes_sarif_to_output_file(make_tree, tmp_path, capsys):
    tree = make_tree({"pkg/bad.py": BAD})
    out_file = tmp_path / "lint.sarif"
    assert main(["--format", "sarif", "--output", str(out_file),
                 str(tree)]) == 1
    assert capsys.readouterr().out == ""
    log = json.loads(out_file.read_text(encoding="utf-8"))
    assert log["runs"][0]["results"][0]["ruleId"] == "RPR001"


# ---------------------------------------------------------------- baseline

def test_baseline_roundtrip_and_gating(make_tree, tmp_path):
    tree = make_tree({"pkg/bad.py": BAD})
    result = run_lint([tree])
    baseline = tmp_path / "baseline.json"
    write_baseline(result.diagnostics, baseline)
    accepted = load_baseline(baseline)
    assert filter_new(result.diagnostics, accepted) == []
    extra = Diagnostic(path="pkg/new.py", line=1, col=0, rule="RPR004",
                       message="new finding")
    assert filter_new(list(result.diagnostics) + [extra], accepted) == [extra]


def test_baseline_is_a_multiset(make_tree, tmp_path):
    one = Diagnostic(path="p.py", line=3, col=0, rule="RPR001", message="m")
    twin = Diagnostic(path="p.py", line=9, col=0, rule="RPR001", message="m")
    baseline = tmp_path / "baseline.json"
    write_baseline([one], baseline)
    accepted = load_baseline(baseline)
    # the same finding at a shifted line stays absorbed...
    assert filter_new([twin], accepted) == []
    # ...but a *second* instance exceeds the accepted count
    assert filter_new([one, twin], accepted) == [twin]


def test_cli_baseline_gates_only_regressions(make_tree, tmp_path, capsys):
    tree = make_tree({"pkg/bad.py": BAD})
    baseline = tmp_path / "baseline.json"
    assert main(["--baseline", str(baseline), "--update-baseline",
                 str(tree)]) == 0
    capsys.readouterr()
    assert main(["--baseline", str(baseline), str(tree)]) == 0
    capsys.readouterr()
    # a regression: a second unseeded draw in another file
    (tree / "pkg" / "worse.py").write_text(BAD, encoding="utf-8")
    assert main(["--baseline", str(baseline), str(tree)]) == 1
    out = capsys.readouterr().out
    assert "worse.py" in out and "bad.py" not in out


def test_cli_update_baseline_requires_baseline_path(capsys):
    assert main(["--update-baseline"]) == 2
    assert "requires --baseline" in capsys.readouterr().err


def test_cli_missing_baseline_file_is_a_usage_error(make_tree, tmp_path,
                                                    capsys):
    tree = make_tree({"pkg/ok.py": "def f():\n    return 1\n"})
    assert main(["--baseline", str(tmp_path / "absent.json"),
                 str(tree)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err
