"""Tests for repro.net.trie."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie


def make_trie(entries):
    trie = PrefixTrie()
    for text, value in entries:
        trie.insert(IPv4Prefix.parse(text), value)
    return trie


class TestPrefixTrie:
    def test_empty_lookup(self):
        trie = PrefixTrie()
        assert trie.lookup(IPv4Address.parse("1.2.3.4")) is None
        assert len(trie) == 0

    def test_exact(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        assert trie.exact(IPv4Prefix.parse("10.0.0.0/8")) == "a"
        assert trie.exact(IPv4Prefix.parse("10.0.0.0/9")) is None

    def test_longest_match_prefers_specific(self):
        trie = make_trie([("10.0.0.0/8", "coarse"), ("10.5.0.0/16", "fine")])
        assert trie.lookup(IPv4Address.parse("10.5.1.1")) == "fine"
        assert trie.lookup(IPv4Address.parse("10.6.1.1")) == "coarse"
        assert trie.lookup(IPv4Address.parse("11.0.0.1")) is None

    def test_longest_match_returns_prefix(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        match = trie.longest_match(IPv4Address.parse("10.9.9.9"))
        assert match is not None
        prefix, value = match
        assert str(prefix) == "10.0.0.0/8"
        assert value == "a"

    def test_default_route(self):
        trie = make_trie([("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten")])
        assert trie.lookup(IPv4Address.parse("1.1.1.1")) == "default"
        assert trie.lookup(IPv4Address.parse("10.1.1.1")) == "ten"

    def test_replace_value(self):
        trie = make_trie([("10.0.0.0/8", "old")])
        trie.insert(IPv4Prefix.parse("10.0.0.0/8"), "new")
        assert len(trie) == 1
        assert trie.lookup(IPv4Address.parse("10.0.0.1")) == "new"

    def test_slash32(self):
        trie = make_trie([("192.0.2.1/32", "host")])
        assert trie.lookup(IPv4Address.parse("192.0.2.1")) == "host"
        assert trie.lookup(IPv4Address.parse("192.0.2.2")) is None

    def test_items_sorted(self):
        trie = make_trie([("10.5.0.0/16", 2), ("10.0.0.0/8", 1),
                          ("9.0.0.0/8", 0)])
        listed = [(str(p), v) for p, v in trie.items()]
        assert listed == [("9.0.0.0/8", 0), ("10.0.0.0/8", 1),
                          ("10.5.0.0/16", 2)]


@st.composite
def prefix_tables(draw):
    n = draw(st.integers(1, 25))
    entries = []
    for i in range(n):
        value = draw(st.integers(0, (1 << 32) - 1))
        length = draw(st.integers(1, 32))
        entries.append((IPv4Prefix.containing(IPv4Address(value), length), i))
    return entries


class TestTrieProperties:
    @given(prefix_tables(), st.integers(0, (1 << 32) - 1))
    def test_matches_linear_scan(self, entries, probe_value):
        trie = PrefixTrie()
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        address = IPv4Address(probe_value)
        candidates = [(p.length, v) for p, v in table.items()
                      if p.contains(address)]
        expected = max(candidates)[1] if candidates else None
        assert trie.lookup(address) == expected

    @given(prefix_tables())
    def test_exact_recovers_all_inserted(self, entries):
        trie = PrefixTrie()
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        for prefix, value in table.items():
            assert trie.exact(prefix) == value
        assert len(trie) == len(table)
