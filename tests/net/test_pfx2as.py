"""Tests for repro.net.pfx2as."""

import io

import pytest

from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.pfx2as import AsMapping, IpToAsDataset, Pfx2AsSnapshot
from repro.util import timeutil
from repro.util.ingest import IngestReport, ReadPolicy


def snapshot_with(*entries):
    return Pfx2AsSnapshot(
        AsMapping(IPv4Prefix.parse(text), asn) for text, asn in entries
    )


class TestAsMapping:
    def test_rejects_nonpositive_asn(self):
        with pytest.raises(ParseError):
            AsMapping(IPv4Prefix.parse("10.0.0.0/8"), 0)


class TestSnapshotLookup:
    def test_origin_asn_longest_match(self):
        snap = snapshot_with(("10.0.0.0/8", 100), ("10.5.0.0/16", 200))
        assert snap.origin_asn(IPv4Address.parse("10.5.0.1")) == 200
        assert snap.origin_asn(IPv4Address.parse("10.9.0.1")) == 100
        assert snap.origin_asn(IPv4Address.parse("11.0.0.1")) is None

    def test_bgp_prefix(self):
        snap = snapshot_with(("10.0.0.0/8", 100), ("10.5.0.0/16", 200))
        assert str(snap.bgp_prefix(IPv4Address.parse("10.5.0.1"))) == "10.5.0.0/16"
        assert snap.bgp_prefix(IPv4Address.parse("200.0.0.1")) is None

    def test_len(self):
        assert len(snapshot_with(("10.0.0.0/8", 1), ("11.0.0.0/8", 2))) == 2


class TestSnapshotSerialization:
    def test_write_read_roundtrip(self):
        snap = snapshot_with(("10.0.0.0/8", 100), ("91.55.0.0/16", 3320))
        buffer = io.StringIO()
        snap.write(buffer)
        parsed = Pfx2AsSnapshot.read(io.StringIO(buffer.getvalue()))
        assert [(str(m.prefix), m.asn) for m in parsed.mappings()] == [
            ("10.0.0.0/8", 100), ("91.55.0.0/16", 3320)]

    def test_read_skips_comments_and_blanks(self):
        text = "# header\n\n10.0.0.0\t8\t100\n"
        snap = Pfx2AsSnapshot.read(io.StringIO(text))
        assert len(snap) == 1

    @pytest.mark.parametrize("line", [
        "10.0.0.0\t8",                 # too few fields
        "10.0.0.0\t8\t100\textra",     # too many fields
        "10.0.0.0\tx\t100",            # non-numeric length
        "10.0.0.0\t8\tAS100",          # non-numeric ASN
        "10.0.0.1\t8\t100",            # host bits set
        "10.0.0.256\t8\t100",          # bad address
    ])
    def test_read_rejects_malformed(self, line):
        with pytest.raises(ParseError):
            Pfx2AsSnapshot.read(io.StringIO(line + "\n"))

    def test_strict_error_names_source_and_line(self):
        text = "10.0.0.0\t8\t100\nbroken\n"
        with pytest.raises(ParseError, match=r"2015-01\.txt: line 2:"):
            Pfx2AsSnapshot.read(io.StringIO(text), source="2015-01.txt")

    def test_repair_quarantines_bad_lines(self):
        text = "10.0.0.0\t8\t100\nbroken\n11.0.0.0\t8\t200\n"
        report = IngestReport()
        snap = Pfx2AsSnapshot.read(io.StringIO(text),
                                   policy=ReadPolicy.REPAIR,
                                   report=report, source="2015-01.txt")
        assert len(snap) == 2
        ingest = report.dataset("pfx2as")
        assert (ingest.parsed, ingest.quarantined) == (2, 1)
        assert "2015-01.txt" in report.issues[0].format()


class TestIpToAsDataset:
    def make_dataset(self):
        dataset = IpToAsDataset()
        dataset.add_snapshot(2015, 1, snapshot_with(("10.0.0.0/8", 100)))
        dataset.add_snapshot(2015, 2, snapshot_with(("10.0.0.0/8", 999)))
        return dataset

    def test_monthly_selection(self):
        dataset = self.make_dataset()
        addr = IPv4Address.parse("10.1.2.3")
        january = timeutil.epoch(2015, 1, 15)
        february = timeutil.epoch(2015, 2, 15)
        assert dataset.origin_asn(addr, january) == 100
        assert dataset.origin_asn(addr, february) == 999

    def test_missing_month_raises(self):
        dataset = self.make_dataset()
        with pytest.raises(DatasetError):
            dataset.origin_asn(IPv4Address.parse("10.0.0.1"),
                               timeutil.epoch(2015, 3, 1))

    def test_bad_month_rejected(self):
        dataset = IpToAsDataset()
        with pytest.raises(DatasetError):
            dataset.add_snapshot(2015, 13, Pfx2AsSnapshot())

    def test_months_sorted(self):
        dataset = IpToAsDataset()
        dataset.add_snapshot(2015, 5, Pfx2AsSnapshot())
        dataset.add_snapshot(2015, 2, Pfx2AsSnapshot())
        assert dataset.months() == [(2015, 2), (2015, 5)]


class TestMonthFallback:
    def make_dataset(self, fallback):
        dataset = IpToAsDataset(fallback=fallback)
        dataset.add_snapshot(2015, 2, snapshot_with(("10.0.0.0/8", 200)))
        dataset.add_snapshot(2015, 4, snapshot_with(("10.0.0.0/8", 400)))
        return dataset

    def test_gap_maps_to_nearest_earlier_month(self):
        dataset = self.make_dataset(fallback=True)
        addr = IPv4Address.parse("10.1.2.3")
        assert dataset.origin_asn(addr, timeutil.epoch(2015, 3, 15)) == 200
        assert dataset.origin_asn(addr, timeutil.epoch(2015, 6, 1)) == 400

    def test_before_first_month_uses_earliest_later(self):
        dataset = self.make_dataset(fallback=True)
        addr = IPv4Address.parse("10.1.2.3")
        assert dataset.origin_asn(addr, timeutil.epoch(2015, 1, 1)) == 200

    def test_without_fallback_gap_still_raises(self):
        dataset = self.make_dataset(fallback=False)
        with pytest.raises(DatasetError):
            dataset.snapshot_for(timeutil.epoch(2015, 3, 15))

    def test_empty_dataset_raises_even_with_fallback(self):
        dataset = IpToAsDataset(fallback=True)
        with pytest.raises(DatasetError):
            dataset.snapshot_for(timeutil.epoch(2015, 3, 15))
