"""Tests for repro.net.ipv4."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.net.ipv4 import TESTING_ADDRESS, IPv4Address, IPv4Prefix


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        addr = IPv4Address.parse("91.55.174.103")
        assert str(addr) == "91.55.174.103"
        assert addr.value == (91 << 24) | (55 << 16) | (174 << 8) | 103

    @pytest.mark.parametrize("bad", [
        "", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.04",
        "1..2.3", " 1.2.3.4.5 ",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            IPv4Address.parse(bad)

    def test_value_range_enforced(self):
        with pytest.raises(ParseError):
            IPv4Address(-1)
        with pytest.raises(ParseError):
            IPv4Address(1 << 32)

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.0") < IPv4Address.parse("2.0.0.0")

    def test_testing_address_constant(self):
        assert str(TESTING_ADDRESS) == "193.0.0.78"

    def test_prefix_helpers(self):
        addr = IPv4Address.parse("91.55.174.103")
        assert str(addr.slash16()) == "91.55.0.0/16"
        assert str(addr.slash8()) == "91.0.0.0/8"

    @given(st.integers(0, (1 << 32) - 1))
    def test_parse_str_roundtrip_property(self, value):
        addr = IPv4Address(value)
        assert IPv4Address.parse(str(addr)) == addr


class TestIPv4Prefix:
    def test_parse_and_str(self):
        prefix = IPv4Prefix.parse("10.128.0.0/9")
        assert str(prefix) == "10.128.0.0/9"
        assert prefix.size == 1 << 23

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.1/8",
                                     "10.0.0.0/x", "10.0.0.0/-1"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            IPv4Prefix.parse(bad)

    def test_containing_masks_host_bits(self):
        addr = IPv4Address.parse("91.55.174.103")
        assert str(IPv4Prefix.containing(addr, 20)) == "91.55.160.0/20"

    def test_zero_length_prefix(self):
        prefix = IPv4Prefix(0, 0)
        assert prefix.contains(IPv4Address.parse("255.255.255.255"))
        assert prefix.mask() == 0

    def test_contains(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert prefix.contains(IPv4Address.parse("192.0.2.255"))
        assert not prefix.contains(IPv4Address.parse("192.0.3.0"))

    def test_contains_prefix(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert outer.contains_prefix(outer)
        assert not inner.contains_prefix(outer)

    def test_first_last_address(self):
        prefix = IPv4Prefix.parse("192.0.2.0/30")
        assert str(prefix.first_address()) == "192.0.2.0"
        assert str(prefix.last_address()) == "192.0.2.3"

    def test_address_at(self):
        prefix = IPv4Prefix.parse("192.0.2.0/30")
        assert str(prefix.address_at(2)) == "192.0.2.2"
        with pytest.raises(ValueError):
            prefix.address_at(4)
        with pytest.raises(ValueError):
            prefix.address_at(-1)

    def test_iter_addresses(self):
        prefix = IPv4Prefix.parse("192.0.2.4/30")
        assert [str(a) for a in prefix.iter_addresses()] == [
            "192.0.2.4", "192.0.2.5", "192.0.2.6", "192.0.2.7"]

    def test_subprefixes(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        halves = list(prefix.subprefixes(25))
        assert [str(p) for p in halves] == ["192.0.2.0/25", "192.0.2.128/25"]
        with pytest.raises(ValueError):
            list(prefix.subprefixes(23))

    def test_ordering(self):
        assert IPv4Prefix.parse("10.0.0.0/8") < IPv4Prefix.parse("10.0.0.0/9")
        assert IPv4Prefix.parse("9.0.0.0/8") < IPv4Prefix.parse("10.0.0.0/8")

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, 32))
    def test_containing_contains_property(self, value, length):
        addr = IPv4Address(value)
        prefix = IPv4Prefix.containing(addr, length)
        assert prefix.contains(addr)
        assert prefix.length == length

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, 32))
    def test_parse_str_roundtrip_property(self, value, length):
        prefix = IPv4Prefix.containing(IPv4Address(value), length)
        assert IPv4Prefix.parse(str(prefix)) == prefix
