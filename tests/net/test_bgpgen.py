"""Tests for repro.net.bgpgen."""

import pytest

from repro.errors import SimulationError
from repro.net.bgpgen import AddressSpaceAllocator, AddressSpacePlan
from repro.net.ipv4 import IPv4Prefix
from repro.util import timeutil


class TestAddressSpacePlan:
    def test_valid_plan(self):
        plan = AddressSpacePlan(num_prefixes=8, prefix_length=20,
                                slash16_groups=4, slash8_groups=2)
        assert plan.num_prefixes == 8

    @pytest.mark.parametrize("kwargs", [
        dict(num_prefixes=0),
        dict(num_prefixes=4, prefix_length=8),
        dict(num_prefixes=4, prefix_length=25),
        dict(num_prefixes=2, slash16_groups=3),
        dict(num_prefixes=4, slash16_groups=2, slash8_groups=3),
        dict(num_prefixes=40, prefix_length=17, slash16_groups=1),
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            AddressSpacePlan(**kwargs)


class TestAllocator:
    def test_deterministic_across_instances(self):
        plan = AddressSpacePlan(num_prefixes=6, slash16_groups=3,
                                slash8_groups=2)
        a = AddressSpaceAllocator(seed=42).allocate(100, plan)
        b = AddressSpaceAllocator(seed=42).allocate(100, plan)
        assert a == b

    def test_no_overlap_between_ases(self):
        allocator = AddressSpaceAllocator(seed=1)
        plan = AddressSpacePlan(num_prefixes=8, slash16_groups=2,
                                slash8_groups=2)
        first = allocator.allocate(100, plan)
        second = allocator.allocate(200, plan)
        for p in first:
            for q in second:
                assert not p.contains_prefix(q)
                assert not q.contains_prefix(p)

    def test_double_allocation_rejected(self):
        allocator = AddressSpaceAllocator(seed=1)
        plan = AddressSpacePlan(num_prefixes=1, slash16_groups=1)
        allocator.allocate(100, plan)
        with pytest.raises(SimulationError):
            allocator.allocate(100, plan)

    def test_group_structure_respected(self):
        allocator = AddressSpaceAllocator(seed=7)
        plan = AddressSpacePlan(num_prefixes=12, prefix_length=20,
                                slash16_groups=4, slash8_groups=2)
        prefixes = allocator.allocate(3215, plan)
        assert len(prefixes) == 12
        slash16s = {IPv4Prefix(p.network & 0xFFFF0000, 16) for p in prefixes}
        slash8s = {IPv4Prefix(p.network & 0xFF000000, 8) for p in prefixes}
        assert len(slash16s) == 4
        assert len(slash8s) == 2

    def test_single_group_keeps_one_slash16(self):
        allocator = AddressSpaceAllocator(seed=7)
        plan = AddressSpacePlan(num_prefixes=8, prefix_length=20,
                                slash16_groups=1, slash8_groups=1)
        prefixes = allocator.allocate(5, plan)
        slash16s = {p.network & 0xFFFF0000 for p in prefixes}
        assert len(slash16s) == 1

    def test_short_prefixes(self):
        allocator = AddressSpaceAllocator(seed=7)
        plan = AddressSpacePlan(num_prefixes=2, prefix_length=14,
                                slash16_groups=2, slash8_groups=2)
        prefixes = allocator.allocate(9, plan)
        assert len(prefixes) == 2
        assert all(p.length == 14 for p in prefixes)
        assert prefixes[0] != prefixes[1]

    def test_public_space_only(self):
        allocator = AddressSpaceAllocator(seed=3)
        plan = AddressSpacePlan(num_prefixes=4, slash16_groups=4,
                                slash8_groups=4)
        for prefix in allocator.allocate(77, plan):
            octet = prefix.network >> 24
            assert octet not in (0, 10, 127, 169, 172, 192, 198, 203)
            assert 1 <= octet < 224

    def test_allocated_query(self):
        allocator = AddressSpaceAllocator(seed=3)
        assert allocator.allocated(5) == []
        plan = AddressSpacePlan(num_prefixes=2, slash16_groups=1)
        given = allocator.allocate(5, plan)
        assert allocator.allocated(5) == given


class TestBuildDataset:
    def test_monthly_snapshots_cover_window(self):
        allocator = AddressSpaceAllocator(seed=1)
        plan = AddressSpacePlan(num_prefixes=2, slash16_groups=1)
        prefixes = allocator.allocate(3320, plan)
        dataset = allocator.build_dataset(timeutil.YEAR_2015_START,
                                          timeutil.YEAR_2015_END)
        # Twelve observation months plus the month containing the end
        # instant (entries in flight at the edge can start there).
        assert len(dataset.months()) == 13
        assert dataset.months()[-1] == (2016, 1)
        addr = prefixes[0].first_address()
        for month in range(1, 13):
            stamp = timeutil.epoch(2015, month, 10)
            assert dataset.origin_asn(addr, stamp) == 3320

    def test_end_boundary_month_resolves_lookups(self):
        """Regression: a change timed by an entry starting at/after the
        window end must resolve, not raise ``DatasetError`` (seen at
        paper scale 8, where a session segment crosses the year edge)."""
        allocator = AddressSpaceAllocator(seed=7)
        plan = AddressSpacePlan(num_prefixes=1, slash16_groups=1)
        prefixes = allocator.allocate(64500, plan)
        dataset = allocator.build_dataset(timeutil.YEAR_2015_START,
                                          timeutil.YEAR_2015_END)
        addr = prefixes[0].first_address()
        for stamp in (timeutil.YEAR_2015_END,
                      timeutil.YEAR_2015_END + 3600.0):
            assert dataset.origin_asn(addr, stamp) == 64500

    def test_mid_month_end_adds_no_extra_month(self):
        allocator = AddressSpaceAllocator(seed=8)
        allocator.allocate(64501,
                           AddressSpacePlan(num_prefixes=1, slash16_groups=1))
        dataset = allocator.build_dataset(timeutil.epoch(2015, 1, 1),
                                          timeutil.epoch(2015, 3, 15))
        assert dataset.months() == [(2015, 1), (2015, 2), (2015, 3)]
