"""Tests for repro.dhcp.protocol (DORA exchange)."""

import pytest

from repro.dhcp.messages import DhcpMessage, DhcpMessageType
from repro.dhcp.protocol import DhcpMessageHandler, run_dora
from repro.dhcp.server import DhcpServer
from repro.errors import SimulationError
from repro.isp.pool import AddressPool
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.util.rng import substream
from repro.util.timeutil import HOUR

SERVER_ID = IPv4Address.parse("192.0.2.1")


def make_handler(lease=4 * HOUR, churn=0.0, seed=1):
    pool = AddressPool([IPv4Prefix.parse("198.51.100.0/24")])
    server = DhcpServer(pool, lease, substream(seed, "proto"),
                        churn_rate_per_hour=churn)
    return DhcpMessageHandler(server, SERVER_ID), server, pool


class TestDora:
    def test_full_exchange(self):
        handler, server, pool = make_handler()
        ack = run_dora(handler, "cpe-1", 0.0)
        assert ack.message_type is DhcpMessageType.ACK
        assert pool.is_allocated(ack.yiaddr)
        assert server.binding_for("cpe-1").address == ack.yiaddr
        assert ack.lease_time == 4 * HOUR
        assert ack.server_id == SERVER_ID

    def test_rebooting_client_gets_same_address(self):
        handler, _, _ = make_handler()
        first = run_dora(handler, "cpe-1", 0.0)
        second = run_dora(handler, "cpe-1", HOUR)
        assert second.yiaddr == first.yiaddr

    def test_two_clients_two_addresses(self):
        handler, _, _ = make_handler()
        a = run_dora(handler, "cpe-1", 0.0)
        b = run_dora(handler, "cpe-2", 0.0)
        assert a.yiaddr != b.yiaddr


class TestRequestPaths:
    def test_renewal_with_ciaddr_acks(self):
        handler, _, _ = make_handler()
        ack = run_dora(handler, "cpe-1", 0.0)
        renewal = DhcpMessage(DhcpMessageType.REQUEST, 2, "cpe-1",
                              ciaddr=ack.yiaddr)
        reply = handler.handle(renewal, HOUR)
        assert reply.message_type is DhcpMessageType.ACK
        assert reply.yiaddr == ack.yiaddr

    def test_request_for_foreign_address_nacked(self):
        handler, _, _ = make_handler()
        run_dora(handler, "cpe-1", 0.0)
        bogus = DhcpMessage(DhcpMessageType.REQUEST, 3, "cpe-1",
                            requested_ip=IPv4Address.parse("198.51.100.250"))
        reply = handler.handle(bogus, HOUR)
        assert reply.message_type is DhcpMessageType.NAK

    def test_request_without_binding_nacked(self):
        handler, _, _ = make_handler()
        orphan = DhcpMessage(DhcpMessageType.REQUEST, 4, "ghost",
                             requested_ip=IPv4Address.parse("198.51.100.9"))
        reply = handler.handle(orphan, 0.0)
        assert reply.message_type is DhcpMessageType.NAK

    def test_expired_renewal_nacked(self):
        handler, _, _ = make_handler(lease=HOUR)
        ack = run_dora(handler, "cpe-1", 0.0)
        late = DhcpMessage(DhcpMessageType.REQUEST, 5, "cpe-1",
                           ciaddr=ack.yiaddr)
        reply = handler.handle(late, 10 * HOUR)
        assert reply.message_type is DhcpMessageType.NAK

    def test_expired_selecting_request_reacquires(self):
        # INIT-REBOOT after expiry with zero churn: preservation wins.
        handler, _, _ = make_handler(lease=HOUR, churn=0.0)
        ack = run_dora(handler, "cpe-1", 0.0)
        reboot = DhcpMessage(DhcpMessageType.REQUEST, 6, "cpe-1",
                             requested_ip=ack.yiaddr)
        reply = handler.handle(reboot, 10 * HOUR)
        assert reply.message_type is DhcpMessageType.ACK
        assert reply.yiaddr == ack.yiaddr


class TestReleaseAndInform:
    def test_release_frees_binding(self):
        handler, server, pool = make_handler()
        ack = run_dora(handler, "cpe-1", 0.0)
        release = DhcpMessage(DhcpMessageType.RELEASE, 7, "cpe-1",
                              ciaddr=ack.yiaddr)
        assert handler.handle(release, HOUR) is None
        assert server.binding_for("cpe-1") is None
        assert not pool.is_allocated(ack.yiaddr)

    def test_release_without_binding_ignored(self):
        handler, _, _ = make_handler()
        release = DhcpMessage(DhcpMessageType.RELEASE, 8, "ghost")
        assert handler.handle(release, 0.0) is None

    def test_decline_frees_binding(self):
        handler, server, _ = make_handler()
        run_dora(handler, "cpe-1", 0.0)
        decline = DhcpMessage(DhcpMessageType.DECLINE, 9, "cpe-1")
        assert handler.handle(decline, HOUR) is None
        assert server.binding_for("cpe-1") is None

    def test_inform_acks_without_lease(self):
        handler, server, _ = make_handler()
        inform = DhcpMessage(DhcpMessageType.INFORM, 10, "static-host",
                             ciaddr=IPv4Address.parse("198.51.100.77"))
        reply = handler.handle(inform, 0.0)
        assert reply.message_type is DhcpMessageType.ACK
        assert reply.lease_time is None
        assert server.binding_for("static-host") is None

    def test_unhandled_type_raises(self):
        handler, _, _ = make_handler()
        offer = DhcpMessage(DhcpMessageType.OFFER, 11, "c")
        with pytest.raises(SimulationError):
            handler.handle(offer, 0.0)
