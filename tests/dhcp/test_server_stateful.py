"""Stateful property tests for DhcpServer.

Random sequences of request/renew/release/reconnect across several clients
must preserve the core invariants: no two clients ever hold the same
address, the pool's allocation count equals the number of live bindings,
and with zero churn a client's address never changes.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dhcp.server import DhcpServer
from repro.isp.pool import AddressPool, PoolPolicy
from repro.net.ipv4 import IPv4Prefix
from repro.util.rng import substream
from repro.util.timeutil import HOUR

CLIENTS = ["cpe-%d" % i for i in range(6)]


class DhcpMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pool = AddressPool([IPv4Prefix.parse("192.0.2.0/26")],
                                PoolPolicy())
        self.server = DhcpServer(self.pool, 4 * HOUR,
                                 substream(7, "dhcp-stateful"),
                                 churn_rate_per_hour=0.0)
        self.clock = 0.0
        self.first_address = {}

    def _advance(self, hours):
        self.clock += hours * HOUR

    @rule(client=st.sampled_from(CLIENTS), hours=st.floats(0.1, 50.0))
    def request(self, client, hours):
        self._advance(hours)
        lease = self.server.request(client, self.clock)
        # Zero churn: RFC 2131 preservation is absolute.
        expected = self.first_address.setdefault(client, lease.address)
        assert lease.address == expected

    @rule(client=st.sampled_from(CLIENTS), hours=st.floats(0.1, 1.9))
    def renew_if_active(self, client, hours):
        self._advance(hours)
        binding = self.server.binding_for(client)
        if binding is None or not binding.is_active(self.clock):
            return
        lease = self.server.renew(client, self.clock)
        assert lease.address == binding.address

    @rule(client=st.sampled_from(CLIENTS), hours=st.floats(0.1, 5.0))
    def release(self, client, hours):
        self._advance(hours)
        if self.server.binding_for(client) is None:
            return
        self.server.release(client, self.clock)
        self.first_address.pop(client, None)

    @rule(client=st.sampled_from(CLIENTS), out_hours=st.floats(0.1, 200.0))
    def reconnect_after_outage(self, client, out_hours):
        if self.server.binding_for(client) is None:
            return
        went_down = self.clock
        self._advance(out_hours)
        result = self.server.reconnect_after_outage(client, went_down,
                                                    self.clock)
        # Zero churn: no outage can take the address away.
        assert not result.address_changed

    @invariant()
    def no_address_shared(self):
        held = [self.server.binding_for(c) for c in CLIENTS]
        addresses = [b.address for b in held if b is not None]
        assert len(addresses) == len(set(addresses))

    @invariant()
    def pool_count_matches_bindings(self):
        bound = sum(1 for c in CLIENTS
                    if self.server.binding_for(c) is not None)
        assert self.pool.allocated_count == bound


TestDhcpStateful = DhcpMachine.TestCase
TestDhcpStateful.settings = settings(max_examples=25,
                                     stateful_step_count=40,
                                     deadline=None)
