"""Tests for repro.dhcp.server."""

import pytest

from repro.dhcp.server import DhcpServer
from repro.errors import SimulationError
from repro.isp.pool import AddressPool, PoolPolicy
from repro.net.ipv4 import IPv4Prefix
from repro.util.rng import substream
from repro.util.timeutil import HOUR


def make_server(churn=0.0, lease=4 * HOUR, seed=1, prefix="192.0.2.0/24"):
    pool = AddressPool([IPv4Prefix.parse(prefix)], PoolPolicy())
    return DhcpServer(pool, lease, substream(seed, "dhcp"),
                      churn_rate_per_hour=churn), pool


class TestConstruction:
    def test_validation(self):
        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/24")])
        rng = substream(0, "x")
        with pytest.raises(SimulationError):
            DhcpServer(pool, 0.0, rng)
        with pytest.raises(SimulationError):
            DhcpServer(pool, HOUR, rng, churn_rate_per_hour=-1.0)


class TestRequestPreservation:
    def test_new_client_gets_address(self):
        server, pool = make_server()
        lease = server.request("c1", 0.0)
        assert pool.is_allocated(lease.address)
        assert server.binding_for("c1") == lease

    def test_rebooting_client_keeps_address_while_active(self):
        server, _ = make_server()
        first = server.request("c1", 0.0)
        second = server.request("c1", HOUR)
        assert second.address == first.address
        assert second.issued_at == HOUR

    def test_expired_binding_preserved_with_zero_churn(self):
        # RFC 2131 4.3.1: the same address whenever possible — with no pool
        # pressure it is always possible.
        server, _ = make_server(churn=0.0)
        first = server.request("c1", 0.0)
        much_later = 100 * HOUR
        second = server.request("c1", much_later)
        assert second.address == first.address

    def test_expired_binding_reclaimed_under_heavy_churn(self):
        server, pool = make_server(churn=1000.0, seed=3)
        first = server.request("c1", 0.0)
        second = server.request("c1", 100 * HOUR)
        assert second.address != first.address
        assert not pool.is_allocated(first.address) or \
            pool.is_allocated(second.address)

    def test_distinct_clients_distinct_addresses(self):
        server, _ = make_server()
        a = server.request("c1", 0.0)
        b = server.request("c2", 0.0)
        assert a.address != b.address


class TestRenew:
    def test_renew_extends_same_address(self):
        server, _ = make_server(lease=2 * HOUR)
        lease = server.request("c1", 0.0)
        renewed = server.renew("c1", HOUR)
        assert renewed.address == lease.address
        assert renewed.expires_at == HOUR + 2 * HOUR

    def test_renew_without_lease_rejected(self):
        server, _ = make_server()
        with pytest.raises(SimulationError):
            server.renew("ghost", 0.0)

    def test_renew_expired_lease_rejected(self):
        server, _ = make_server(lease=HOUR)
        server.request("c1", 0.0)
        with pytest.raises(SimulationError):
            server.renew("c1", 2 * HOUR)


class TestRelease:
    def test_release_frees_address(self):
        server, pool = make_server()
        lease = server.request("c1", 0.0)
        server.release("c1", 1.0)
        assert not pool.is_allocated(lease.address)
        assert server.binding_for("c1") is None

    def test_release_unknown_rejected(self):
        server, _ = make_server()
        with pytest.raises(SimulationError):
            server.release("ghost", 0.0)


class TestReconnectAfterOutage:
    def test_short_outage_never_changes_address(self):
        # Outage shorter than half the lease cannot outlive the residual.
        server, _ = make_server(churn=10.0, lease=4 * HOUR)
        lease = server.request("c1", 0.0)
        result = server.reconnect_after_outage("c1", 10 * HOUR,
                                               10 * HOUR + HOUR)
        assert not result.address_changed
        assert result.lease.address == lease.address

    def test_long_outage_with_churn_changes_address(self):
        server, _ = make_server(churn=1000.0, lease=HOUR, seed=5)
        lease = server.request("c1", 0.0)
        result = server.reconnect_after_outage("c1", 10 * HOUR, 200 * HOUR)
        assert result.address_changed
        assert result.lease.address != lease.address

    def test_long_outage_without_churn_keeps_address(self):
        server, _ = make_server(churn=0.0, lease=HOUR)
        lease = server.request("c1", 0.0)
        result = server.reconnect_after_outage("c1", 10 * HOUR, 500 * HOUR)
        assert not result.address_changed
        assert result.lease.address == lease.address

    def test_unknown_client_counts_as_change(self):
        server, _ = make_server()
        result = server.reconnect_after_outage("new", 0.0, HOUR)
        assert result.address_changed

    def test_reconnect_before_outage_rejected(self):
        server, _ = make_server()
        server.request("c1", 0.0)
        with pytest.raises(SimulationError):
            server.reconnect_after_outage("c1", HOUR, 0.0)

    def test_change_probability_grows_with_outage_duration(self):
        # Statistical check of the Figure 9 (LGI) mechanism.
        changes = {"short": 0, "long": 0}
        for trial in range(120):
            server, _ = make_server(churn=0.05, lease=6 * HOUR,
                                    seed=1000 + trial)
            server.request("c1", 0.0)
            kind = "short" if trial % 2 == 0 else "long"
            gap = 2 * HOUR if kind == "short" else 72 * HOUR
            result = server.reconnect_after_outage("c1", 100 * HOUR,
                                                   100 * HOUR + gap)
            changes[kind] += result.address_changed
        assert changes["short"] == 0
        assert changes["long"] > 30
