"""Tests for repro.dhcp.lease."""

import pytest

from repro.dhcp.lease import Lease
from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address

ADDR = IPv4Address.parse("192.0.2.1")


class TestLease:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(SimulationError):
            Lease(ADDR, "c1", 0.0, 0.0)

    def test_timers_follow_rfc2131(self):
        lease = Lease(ADDR, "c1", 1000.0, 7200.0)
        assert lease.expires_at == 8200.0
        assert lease.t1 == 1000.0 + 3600.0
        assert lease.t2 == 1000.0 + 6300.0

    def test_is_active(self):
        lease = Lease(ADDR, "c1", 0.0, 100.0)
        assert lease.is_active(99.9)
        assert not lease.is_active(100.0)

    def test_renewed_keeps_address_restarts_clock(self):
        lease = Lease(ADDR, "c1", 0.0, 100.0)
        renewed = lease.renewed(50.0)
        assert renewed.address == ADDR
        assert renewed.client_id == "c1"
        assert renewed.issued_at == 50.0
        assert renewed.expires_at == 150.0
