"""Tests for repro.dhcp.messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dhcp.messages import (
    MAGIC_COOKIE,
    DhcpMessage,
    DhcpMessageType,
    Op,
)
from repro.errors import ParseError
from repro.net.ipv4 import IPv4Address

ADDR = IPv4Address.parse("192.0.2.10")
SERVER = IPv4Address.parse("192.0.2.1")


class TestValidation:
    def test_valid_discover(self):
        message = DhcpMessage(DhcpMessageType.DISCOVER, 42, "cpe-1")
        assert message.op is Op.REQUEST

    def test_reply_types_have_reply_op(self):
        for kind in (DhcpMessageType.OFFER, DhcpMessageType.ACK,
                     DhcpMessageType.NAK):
            message = DhcpMessage(kind, 1, "c")
            assert message.op is Op.REPLY

    @pytest.mark.parametrize("kwargs", [
        dict(xid=-1),
        dict(xid=2 ** 32),
        dict(client_id=""),
        dict(client_id="x" * 300),
        dict(lease_time=0),
        dict(lease_time=2 ** 32),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        base = dict(message_type=DhcpMessageType.DISCOVER, xid=1,
                    client_id="c")
        base.update(kwargs)
        with pytest.raises(ParseError):
            DhcpMessage(**base)


class TestWireFormat:
    def full_message(self):
        return DhcpMessage(
            DhcpMessageType.ACK, xid=0xDEADBEEF, client_id="cpe-77",
            ciaddr=ADDR, yiaddr=ADDR, requested_ip=ADDR,
            lease_time=14400, server_id=SERVER)

    def test_roundtrip_full(self):
        message = self.full_message()
        assert DhcpMessage.decode(message.encode()) == message

    def test_roundtrip_minimal(self):
        message = DhcpMessage(DhcpMessageType.DISCOVER, 1, "c")
        assert DhcpMessage.decode(message.encode()) == message

    def test_magic_cookie_present(self):
        wire = self.full_message().encode()
        assert MAGIC_COOKIE in wire

    def test_truncated_rejected(self):
        wire = self.full_message().encode()
        with pytest.raises(ParseError):
            DhcpMessage.decode(wire[:50])

    def test_bad_cookie_rejected(self):
        wire = bytearray(self.full_message().encode())
        wire[236:240] = b"\x00\x00\x00\x00"
        with pytest.raises(ParseError):
            DhcpMessage.decode(bytes(wire))

    def test_missing_end_rejected(self):
        wire = self.full_message().encode()
        with pytest.raises(ParseError):
            DhcpMessage.decode(wire[:-1] + b"\x00")

    def test_unknown_message_type_rejected(self):
        message = DhcpMessage(DhcpMessageType.DISCOVER, 1, "c")
        wire = bytearray(message.encode())
        # Option 53 value byte sits right after the cookie: 53, len, value.
        index = wire.index(MAGIC_COOKIE) + 4 + 2
        wire[index] = 99
        with pytest.raises(ParseError):
            DhcpMessage.decode(bytes(wire))

    def test_inconsistent_op_rejected(self):
        message = DhcpMessage(DhcpMessageType.ACK, 1, "c")
        wire = bytearray(message.encode())
        wire[0] = 1  # claim BOOTREQUEST for a reply type
        with pytest.raises(ParseError):
            DhcpMessage.decode(bytes(wire))

    @given(st.integers(0, 2 ** 32 - 1),
           st.sampled_from(list(DhcpMessageType)),
           st.text(min_size=1, max_size=30),
           st.integers(0, 2 ** 32 - 1),
           st.one_of(st.none(), st.integers(1, 2 ** 32 - 1)))
    def test_roundtrip_property(self, xid, kind, client_id, addr_value,
                                lease_time):
        message = DhcpMessage(
            kind, xid, client_id,
            yiaddr=IPv4Address(addr_value), lease_time=lease_time)
        assert DhcpMessage.decode(message.encode()) == message
