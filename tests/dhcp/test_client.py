"""Tests for repro.dhcp.client."""

import pytest

from repro.dhcp.client import ClientState, DhcpClient
from repro.dhcp.server import DhcpServer
from repro.errors import SimulationError
from repro.isp.pool import AddressPool
from repro.net.ipv4 import IPv4Prefix
from repro.util.rng import substream
from repro.util.timeutil import HOUR


def make_client(lease=4 * HOUR, churn=0.0, seed=1):
    pool = AddressPool([IPv4Prefix.parse("192.0.2.0/24")])
    server = DhcpServer(pool, lease, substream(seed, "c"),
                        churn_rate_per_hour=churn)
    return DhcpClient("c1", server), server


class TestBootAndRelease:
    def test_boot_obtains_lease(self):
        client, _ = make_client()
        lease = client.boot(0.0)
        assert client.state is ClientState.BOUND
        assert client.address == lease.address

    def test_release_returns_to_init(self):
        client, server = make_client()
        client.boot(0.0)
        client.release(10.0)
        assert client.state is ClientState.INIT
        assert client.address is None
        assert server.binding_for("c1") is None

    def test_release_without_lease_rejected(self):
        client, _ = make_client()
        with pytest.raises(SimulationError):
            client.release(0.0)

    def test_time_cannot_go_backwards(self):
        client, _ = make_client()
        client.boot(100.0)
        with pytest.raises(SimulationError):
            client.boot(50.0)


class TestRenewal:
    def test_reachable_client_keeps_address_forever(self):
        client, _ = make_client(lease=2 * HOUR)
        first = client.boot(0.0)
        client.advance_to(1000 * HOUR, reachable=True)
        assert client.state is ClientState.BOUND
        assert client.address == first.address
        assert client.lease.expires_at > 1000 * HOUR - 2 * HOUR

    def test_renewals_happen_at_t1(self):
        client, _ = make_client(lease=4 * HOUR)
        client.boot(0.0)
        client.advance_to(2 * HOUR + 1, reachable=True)
        # Renewed once at T1=2h: lease now expires at 6h.
        assert client.lease.issued_at == 2 * HOUR
        assert client.lease.expires_at == 6 * HOUR


class TestOutageBehaviour:
    def test_unreachable_enters_renewing_then_rebinding(self):
        client, _ = make_client(lease=8 * HOUR)
        client.boot(0.0)
        client.advance_to(4 * HOUR + 1, reachable=False)
        assert client.state is ClientState.RENEWING
        client.advance_to(7 * HOUR + 1, reachable=False)
        assert client.state is ClientState.REBINDING

    def test_expiry_during_outage_drops_to_init(self):
        client, _ = make_client(lease=2 * HOUR)
        client.boot(0.0)
        client.advance_to(3 * HOUR, reachable=False)
        assert client.state is ClientState.INIT
        assert client.address is None

    def test_reboot_after_short_outage_recovers_same_address(self):
        client, _ = make_client(lease=2 * HOUR, churn=0.0)
        first = client.boot(0.0)
        client.advance_to(10 * HOUR, reachable=False)
        second = client.boot(10 * HOUR)
        assert second.address == first.address

    def test_reboot_after_long_outage_heavy_churn_changes(self):
        client, _ = make_client(lease=2 * HOUR, churn=1000.0, seed=9)
        first = client.boot(0.0)
        client.advance_to(500 * HOUR, reachable=False)
        second = client.boot(500 * HOUR)
        assert second.address != first.address

    def test_advance_in_init_is_noop(self):
        client, _ = make_client()
        client.advance_to(HOUR, reachable=False)
        assert client.state is ClientState.INIT
