"""Tests for repro.faults.process (deterministic process-fault plans).

These cover the plan in isolation — placement determinism, kind-draw
independence, transient vs persistent behavior, and exact reconciliation
against synthetic supervision rows.  The end-to-end faulted runs live in
``tests/runtime/test_supervisor.py`` (the plan is inert; the runtime is
what interprets it).
"""

import dataclasses

import pytest

from repro.faults.injectors import FaultKind
from repro.faults.process import (
    PROCESS_FAULT_KINDS,
    ProcessFaultPlan,
    ProcessFaultReport,
    reconcile,
)

pytestmark = pytest.mark.faults

STAGES = ("filter", "spans", "reboots", "gaps")


def test_fault_at_is_deterministic():
    plan = ProcessFaultPlan(seed=42, worker_crash=0.3, worker_hang=0.3,
                            envelope_corrupt=0.3, worker_slow=0.3)
    for stage in STAGES:
        for index in range(32):
            first = plan.fault_at(stage, index, 0)
            assert all(plan.fault_at(stage, index, 0) == first
                       for _ in range(3))


def test_zero_rates_place_nothing():
    plan = ProcessFaultPlan(seed=7)
    assert not plan.any_rate()
    for stage in STAGES:
        assert plan.placements(stage, 64) == {}


def test_rate_one_fires_everywhere_first_kind_wins():
    plan = ProcessFaultPlan(seed=7, worker_crash=1.0, envelope_corrupt=1.0)
    placed = plan.placements("filter", 16)
    assert set(placed) == set(range(16))
    # worker_crash precedes envelope_corrupt in the fixed draw order, so
    # at most one kind fires and it is always the earlier one.
    assert set(placed.values()) == {FaultKind.WORKER_CRASH}


def test_transient_plan_stops_after_attempt_zero():
    plan = ProcessFaultPlan(seed=3, envelope_corrupt=1.0)
    assert plan.fault_at("filter", 0, 0) == FaultKind.ENVELOPE_CORRUPT.value
    assert plan.fault_at("filter", 0, 1) is None
    assert plan.fault_at("filter", 0, 5) is None


def test_persistent_plan_fires_on_every_attempt():
    plan = ProcessFaultPlan(seed=3, envelope_corrupt=1.0, persistent=True)
    for attempt in range(4):
        assert (plan.fault_at("filter", 0, attempt)
                == FaultKind.ENVELOPE_CORRUPT.value)


def test_kind_draws_are_independent():
    """Adding a later kind's rate never moves an earlier kind's
    placements, and removing an earlier kind exposes — not reshuffles —
    the later kind's own placements."""
    corrupt_only = ProcessFaultPlan(seed=11, envelope_corrupt=0.4)
    with_slow = ProcessFaultPlan(seed=11, envelope_corrupt=0.4,
                                 worker_slow=1.0)
    baseline = corrupt_only.placements("spans", 64)
    combined = with_slow.placements("spans", 64)
    corrupt_shards = {index for index, kind in combined.items()
                      if kind is FaultKind.ENVELOPE_CORRUPT}
    assert corrupt_shards == set(baseline)
    # Every other shard got the slow fault (rate 1.0), none got lost.
    assert set(combined) == set(range(64))

    crash_heavy = ProcessFaultPlan(seed=11, worker_crash=1.0,
                                   envelope_corrupt=0.4)
    assert set(crash_heavy.placements("spans", 64).values()) == {
        FaultKind.WORKER_CRASH}


def test_placements_vary_by_stage_and_seed():
    plan = ProcessFaultPlan(seed=1, worker_crash=0.5)
    other_seed = ProcessFaultPlan(seed=2, worker_crash=0.5)
    assert plan.placements("filter", 64) != plan.placements("spans", 64)
    assert plan.placements("filter", 64) != other_seed.placements(
        "filter", 64)


@pytest.mark.parametrize("kwargs", [
    {"worker_crash": -0.1},
    {"worker_hang": 1.5},
    {"envelope_corrupt": 2.0},
    {"worker_slow": -1.0},
    {"slow_delay_s": -0.01},
])
def test_plan_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ProcessFaultPlan(seed=0, **kwargs)


def test_plan_is_frozen_and_picklable():
    import pickle

    plan = ProcessFaultPlan(seed=9, worker_hang=0.2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.seed = 1  # type: ignore[misc]
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.placements("gaps", 32) == plan.placements("gaps", 32)


def test_draw_order_is_pinned():
    # Reordering PROCESS_FAULT_KINDS would silently move every seeded
    # placement; the tuple is part of the plan's determinism contract.
    assert PROCESS_FAULT_KINDS == (
        FaultKind.WORKER_CRASH, FaultKind.WORKER_HANG,
        FaultKind.ENVELOPE_CORRUPT, FaultKind.WORKER_SLOW)


# -- reconciliation ----------------------------------------------------------

@dataclasses.dataclass
class _Row:
    """Duck-typed stand-in for runtime StageResilience (stage, shards,
    abandoned) — the faults layer never imports the runtime."""

    stage: str
    shards: int
    abandoned: tuple = ()


def test_reconcile_accounts_every_placement_exactly():
    plan = ProcessFaultPlan(seed=21, worker_crash=0.5,
                            envelope_corrupt=0.5)
    rows = [_Row("filter", 16), _Row("spans", 16)]
    placed = {stage: plan.placements(stage, 16) for stage in
              ("filter", "spans")}
    report = reconcile(plan, rows)
    assert report.reconciled
    assert report.total(report.injected) == sum(
        len(p) for p in placed.values())
    assert report.total(report.abandoned) == 0
    assert report.total(report.recovered) == report.total(report.injected)


def test_reconcile_splits_recovered_from_abandoned():
    plan = ProcessFaultPlan(seed=21, worker_crash=1.0)
    lost = (0, 3)
    report = reconcile(plan, [_Row("filter", 8, abandoned=lost)])
    kind = FaultKind.WORKER_CRASH.value
    assert report.injected[kind] == 8
    assert report.abandoned[kind] == len(lost)
    assert report.recovered[kind] == 8 - len(lost)
    assert report.reconciled
    rendered = report.render()
    assert "8 injected" in rendered
    assert kind in rendered
    assert report.to_dict()["reconciled"] is True


def test_reconcile_ignores_unfaulted_abandons():
    # A shard can be quarantined by a cause the plan never injected
    # (e.g. a real crash in production); reconcile must not claim it.
    plan = ProcessFaultPlan(seed=21)  # places nothing
    report = reconcile(plan, [_Row("filter", 8, abandoned=(2,))])
    assert report.injected == {}
    assert report.abandoned == {}
    assert report.reconciled


def test_report_reconciled_detects_loss():
    report = ProcessFaultReport(
        seed=0, injected={"worker-crash": 3},
        recovered={"worker-crash": 1}, abandoned={"worker-crash": 1})
    assert not report.reconciled
    report.recovered["worker-crash"] = 2
    assert report.reconciled
