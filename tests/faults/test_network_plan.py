"""Tests for repro.faults.network (deterministic network-fault plans).

These cover the plan in isolation — placement determinism, kind-draw
independence, rate validation, and exact reconciliation against
synthetic channel logs and supervision rows.  End-to-end faulted
distributed runs live in ``tests/dist/test_faults.py`` (the plan is
inert; the transport is what interprets it).
"""

import pytest

from repro.faults.injectors import FaultKind
from repro.faults.network import (
    NETWORK_FAULT_KINDS,
    NetworkFaultPlan,
    NetworkFaultReport,
    reconcile_network,
)

pytestmark = pytest.mark.faults

MESSAGES = ("hello", "lease", "result", "heartbeat")


def test_fault_on_is_deterministic():
    plan = NetworkFaultPlan(seed=42, msg_drop=0.3, msg_garble=0.3,
                            msg_delay=0.3, conn_disconnect=0.3)
    for seq in range(64):
        first = plan.fault_on("w0#0", "send", "lease", seq)
        assert all(plan.fault_on("w0#0", "send", "lease", seq) == first
                   for _ in range(3))


def test_zero_rates_place_nothing():
    plan = NetworkFaultPlan(seed=7)
    assert not plan.any_rate()
    assert all(plan.fault_on("w0#0", "send", msg, seq) is None
               for msg in MESSAGES for seq in range(64))


def test_rate_one_fires_everywhere_first_kind_wins():
    plan = NetworkFaultPlan(seed=7, msg_drop=1.0, conn_disconnect=1.0)
    placed = {plan.fault_on("w0#0", "send", "lease", seq)
              for seq in range(16)}
    # msg_drop precedes conn_disconnect in the fixed draw order, so at
    # most one kind fires and it is always the earlier one.
    assert placed == {FaultKind.MSG_DROP.value}


def test_placement_keys_on_channel_and_seq_not_message_type():
    """Same position, different message text: same fault — the schedule
    is a pure function of the conversation position; different channel:
    a different schedule (this is what makes reconnects draw fresh)."""
    plan = NetworkFaultPlan(seed=9, msg_garble=0.5)
    for seq in range(32):
        kinds = {plan.fault_on("w0#0", "send", msg, seq)
                 for msg in MESSAGES}
        assert len(kinds) == 1
    schedules = [
        tuple(plan.fault_on(channel, "send", "lease", seq)
              for seq in range(64))
        for channel in ("w0#0", "w0#1", "w1#0")
    ]
    assert len(set(schedules)) == 3


def test_kind_draws_are_independent():
    """Adding a later kind's rate never moves an earlier kind's
    placements."""
    garble_only = NetworkFaultPlan(seed=11, msg_garble=0.4)
    with_delay = NetworkFaultPlan(seed=11, msg_garble=0.4, msg_delay=1.0)
    baseline = {seq for seq in range(64)
                if garble_only.fault_on("w0#0", "send", "lease", seq)
                == FaultKind.MSG_GARBLE.value}
    combined = {seq: with_delay.fault_on("w0#0", "send", "lease", seq)
                for seq in range(64)}
    garbled = {seq for seq, kind in combined.items()
               if kind == FaultKind.MSG_GARBLE.value}
    assert garbled == baseline
    # Every other message got the delay (rate 1.0), none got lost.
    assert set(combined.values()) <= {FaultKind.MSG_GARBLE.value,
                                      FaultKind.MSG_DELAY.value}
    assert all(kind is not None for kind in combined.values())


def test_draw_order_is_pinned():
    assert NETWORK_FAULT_KINDS == (
        FaultKind.MSG_DROP, FaultKind.MSG_GARBLE, FaultKind.MSG_DELAY,
        FaultKind.CONN_DISCONNECT)


@pytest.mark.parametrize("field", ["msg_drop", "msg_garble", "msg_delay",
                                   "conn_disconnect"])
def test_rates_validated(field):
    with pytest.raises(ValueError):
        NetworkFaultPlan(seed=1, **{field: 1.5})
    with pytest.raises(ValueError):
        NetworkFaultPlan(seed=1, **{field: -0.1})


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        NetworkFaultPlan(seed=1, delay_s=-1.0)


class _Row:
    def __init__(self, total, analyzed, quarantined, causes):
        self.total_items = total
        self.analyzed_items = analyzed
        self.quarantined_items = quarantined
        self.failures = [type("F", (), {"cause": cause})()
                         for cause in causes]


def test_reconcile_folds_logs_and_resilience():
    plan = NetworkFaultPlan(seed=5, msg_drop=0.1)
    report = reconcile_network(
        plan,
        [{"msg-drop": 2}, {"msg-drop": 1, "msg-garble": 3}],
        [_Row(100, 100, 0, ["hang"]),
         _Row(50, 40, 10, ["disconnect", "disconnect"])])
    assert report.injected == {"msg-drop": 3, "msg-garble": 3}
    assert report.disruptions == {"hang": 1, "disconnect": 2}
    assert report.total_items == 150
    assert report.analyzed_items == 140
    assert report.quarantined_items == 10
    assert report.accounted
    assert report.degraded
    assert "network faults" in report.render()


def test_reconcile_flags_unaccounted_items():
    report = NetworkFaultReport(seed=1, total_items=10, analyzed_items=5,
                                quarantined_items=1)
    assert not report.accounted
    assert "UNRECONCILED" in report.render()
    assert report.to_dict()["accounted"] is False
