"""Tests for repro.faults.injectors (line-level corruption primitives)."""

from repro.errors import ParseError
from repro.faults.injectors import (
    FaultKind,
    drop_kroot_series,
    duplicate_lines,
    garble_lines,
    garble_uptime_values,
    malform_kroot_series,
    same_probe_adjacent_pairs,
    swap_adjacent_pairs,
    truncate_lines,
    wrap_uptime_counters,
)
from repro.util.rng import substream

CONNLOG = [
    "1\t100\t200\t10.0.0.1",
    "1\t250\t300\t10.0.0.2",
    "2\t100\t150\t10.0.1.1",
    "2\t160\t170\t10.0.1.2",
]
UPTIME = [
    "1\t1000\t500",
    "1\t2000\t1500",
]


def rng():
    return substream(99, "test", "injectors")


class TestGarble:
    def test_replaces_with_unparseable_junk(self):
        lines = list(CONNLOG)
        faults = garble_lines(lines, [1], rng(), "f",
                              FaultKind.CONNLOG_GARBLED)
        assert len(faults) == 1 and faults[0].line == 2
        assert "\t" not in lines[1]
        assert lines[1].strip() and not lines[1].startswith("#")

    def test_deterministic_for_same_stream(self):
        first, second = list(CONNLOG), list(CONNLOG)
        garble_lines(first, [0, 2], rng(), "f", FaultKind.CONNLOG_GARBLED)
        garble_lines(second, [0, 2], rng(), "f", FaultKind.CONNLOG_GARBLED)
        assert first == second


class TestTruncate:
    def test_always_leaves_too_few_fields(self):
        for seed in range(20):
            lines = list(CONNLOG)
            truncate_lines(lines, [0], substream(seed, "t"), "f",
                           FaultKind.CONNLOG_TRUNCATED)
            assert len(lines[0].strip().split("\t")) < 4
            assert lines[0].strip()


class TestDuplicate:
    def test_inserts_copy_after_original(self):
        lines = list(CONNLOG)
        faults = duplicate_lines(lines, [0, 2], "f",
                                 FaultKind.CONNLOG_DUPLICATED)
        assert len(lines) == 6
        assert lines[0] == lines[1] == CONNLOG[0]
        assert lines[3] == lines[4] == CONNLOG[2]
        assert all(fault.records_delta == 1 for fault in faults)


class TestSwap:
    def test_swaps_with_successor(self):
        lines = list(CONNLOG)
        swap_adjacent_pairs(lines, [0], "f",
                            FaultKind.CONNLOG_OUT_OF_ORDER)
        assert lines[0] == CONNLOG[1] and lines[1] == CONNLOG[0]

    def test_same_probe_pairs_only(self):
        # Pairs (0,1) and (2,3) share a probe; pair (1,2) crosses probes.
        assert same_probe_adjacent_pairs(CONNLOG) == [0, 2]


class TestUptimeFaults:
    def test_wrap_adds_counter_modulus(self):
        lines = list(UPTIME)
        wrap_uptime_counters(lines, [0], "f")
        assert lines[0].split("\t")[2] == "%.0f" % (500 + 2 ** 32)

    def test_garble_makes_counter_non_numeric(self):
        lines = list(UPTIME)
        garble_uptime_values(lines, [1], rng(), "f")
        try:
            float(lines[1].split("\t")[2])
        except ValueError:
            pass
        else:
            raise AssertionError("counter still parses: %r" % lines[1])


class TestKrootFaults:
    def states(self):
        return [{"probe_id": pid, "start": 0.0, "end": 10.0,
                 "cadence": 240.0, "phase": 0.0,
                 "power_off": [], "network_down": []}
                for pid in (1, 2, 3)]

    def test_drop_removes_states(self):
        states = self.states()
        faults = drop_kroot_series(states, [1], "f")
        assert [s["probe_id"] for s in states] == [1, 3]
        assert faults[0].records_delta == -1

    def test_malform_strips_a_required_key(self):
        from repro.sim.io import _series_from_state
        states = self.states()
        malform_kroot_series(states, [0], rng(), "f")
        assert len(states) == 3
        try:
            _series_from_state(states[0])
        except ParseError:
            pass
        else:
            raise AssertionError("malformed state still parses")
