"""Headline robustness test: corrupt a known world, REPAIR, reconcile.

A seeded ``small_world`` bundle is corrupted by :class:`FaultPlan` at
three fault rates and re-ingested under ``ReadPolicy.REPAIR``.  At every
rate the suite asserts that (a) the load and the full analysis pipeline
complete, (b) the ground-truth paper shapes survive — Daily-DSL keeps
its 24 h Table 5 periodicity and Reactive-DSL keeps the highest
P(ac|nw) — and (c) the :class:`IngestReport` accounts for every
injected fault exactly: parsed + repaired + quarantined equals
written + injected delta, per dataset and per fault kind.
"""

import statistics

import pytest

from repro.errors import ReproError
from repro.experiments.scenarios import small_world
from repro.faults.injectors import FaultKind
from repro.faults.plan import FaultPlan
from repro.sim.io import load_bundle, write_world
from repro.core.pipeline import pipeline_for_bundle
from repro.util.ingest import IngestReport, ReadPolicy

pytestmark = pytest.mark.faults

DATASETS = ("archive", "connlog", "uptime", "kroot", "pfx2as")
RATES = (0.02, 0.05, 0.1)

#: small_world ground truth (see repro.experiments.scenarios).
DAILY_DSL = 64496        # PPP, forced 24 h reconnect
REACTIVE_DSL = 64497     # PPP, readdresses on network outages
STABLE_CABLE = 64498     # DHCP, stable across outages


@pytest.fixture(scope="module")
def world():
    # 40 days spans two pfx2as months, so the uniform plan's
    # missing-month fault has a file it is allowed to remove.
    return small_world(seed=17, days=40)


def corrupted(world, path, rate):
    root = write_world(world, path)
    fault_report = FaultPlan.uniform(seed=11, rate=rate).apply(root)
    return root, fault_report


@pytest.fixture(scope="module", params=RATES)
def repaired(request, world, tmp_path_factory):
    root, fault_report = corrupted(
        world, tmp_path_factory.mktemp("degraded"), request.param)
    ingest = IngestReport()
    bundle = load_bundle(root, policy=ReadPolicy.REPAIR, report=ingest)
    results = pipeline_for_bundle(bundle).run()
    return fault_report, ingest, results


class TestRepairCompletes:
    def test_faults_were_actually_injected(self, repaired):
        fault_report, _, _ = repaired
        assert len(fault_report.faults) > 10
        for kind in (FaultKind.CONNLOG_GARBLED, FaultKind.UPTIME_WRAP,
                     FaultKind.KROOT_MALFORMED_SERIES,
                     FaultKind.PFX2AS_MISSING_MONTH):
            assert fault_report.count(kind) >= 1, kind

    def test_repair_is_not_clean_but_pipeline_runs(self, repaired):
        _, ingest, results = repaired
        assert not ingest.clean
        assert results.stats_by_probe

    def test_strict_load_fails_on_same_bundle(self, world, tmp_path):
        root, _ = corrupted(world, tmp_path / "strict", RATES[0])
        with pytest.raises(ReproError):
            load_bundle(root)


class TestShapeSurvives:
    def test_daily_dsl_stays_24h_periodic(self, repaired):
        _, _, results = repaired
        periods = {row.period_hours for row in results.table5_rows()
                   if row.asn == DAILY_DSL}
        assert periods == {24.0}

    def test_reactive_dsl_keeps_highest_p_change_given_network(
            self, repaired):
        _, _, results = repaired
        by_asn: dict[int, list[float]] = {}
        for probe_id, stats in results.stats_by_probe.items():
            asn = results.asn_by_probe.get(probe_id)
            if asn is not None:
                by_asn.setdefault(asn, []).append(
                    stats.p_change_given_network)
        means = {asn: statistics.mean(vals)
                 for asn, vals in by_asn.items()}
        assert means[REACTIVE_DSL] == max(means.values())
        assert means[REACTIVE_DSL] > means.get(STABLE_CABLE, 0.0)


class TestExactReconciliation:
    def test_every_dataset_reconciles(self, repaired):
        fault_report, ingest, _ = repaired
        for dataset in DATASETS:
            assert (ingest.dataset(dataset).total
                    == fault_report.expected_records(dataset)), dataset

    def test_connlog_faults_fully_accounted(self, repaired):
        fault_report, ingest, _ = repaired
        connlog = ingest.dataset("connlog")
        destructive = sum(fault_report.count(kind) for kind in (
            FaultKind.CONNLOG_GARBLED, FaultKind.CONNLOG_TRUNCATED,
            FaultKind.CONNLOG_DUPLICATED))
        assert connlog.quarantined == destructive
        # Each adjacent swap displaces exactly the two records involved.
        assert connlog.repaired == 2 * fault_report.count(
            FaultKind.CONNLOG_OUT_OF_ORDER)

    def test_uptime_faults_fully_accounted(self, repaired):
        fault_report, ingest, _ = repaired
        uptime = ingest.dataset("uptime")
        assert uptime.repaired == fault_report.count(FaultKind.UPTIME_WRAP)
        assert uptime.quarantined == fault_report.count(
            FaultKind.UPTIME_GARBAGE)

    def test_kroot_and_pfx2as_fully_accounted(self, repaired):
        fault_report, ingest, _ = repaired
        assert ingest.dataset("kroot").quarantined == fault_report.count(
            FaultKind.KROOT_MALFORMED_SERIES)
        assert ingest.dataset("pfx2as").quarantined == fault_report.count(
            FaultKind.PFX2AS_BAD_LINE)
        gap_notes = [issue for issue in ingest.issues_for("pfx2as")
                     if "no snapshot for" in issue.message]
        assert len(gap_notes) >= fault_report.count(
            FaultKind.PFX2AS_MISSING_MONTH)


class TestMissingFilesDegrade:
    def test_dropped_datasets_load_empty_under_repair(
            self, world, tmp_path):
        root = write_world(world, tmp_path / "b")
        FaultPlan(seed=2, drop_files=("uptime.tsv", "kroot.json")).apply(
            root)
        ingest = IngestReport()
        bundle = load_bundle(root, policy=ReadPolicy.REPAIR, report=ingest)
        assert bundle.uptime.probe_ids() == []
        assert bundle.kroot.probe_ids() == []
        assert len(ingest.issues) == 2
        results = pipeline_for_bundle(bundle).run()
        # No k-root / uptime evidence: outage attribution degrades to
        # empty rather than crashing.
        assert results.table2_rows()
