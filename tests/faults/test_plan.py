"""Tests for repro.faults.plan (FaultPlan / FaultReport bookkeeping)."""

import json

import pytest

from repro.experiments.scenarios import small_world
from repro.faults.injectors import FaultKind
from repro.faults.plan import FaultPlan, FaultReport, _budget
from repro.sim.io import write_world


@pytest.fixture(scope="module")
def world():
    return small_world(seed=17, days=25)


def fresh_bundle(world, path):
    return write_world(world, path)


class TestBudget:
    def test_rounds_and_caps(self):
        assert _budget(0.05, 100) == 5
        assert _budget(0.5, 3) == 2
        assert _budget(2.0, 4) == 4

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            _budget(-0.1, 10)


class TestApply:
    def test_written_counts_match_bundle(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        report = FaultPlan(seed=1).apply(root)
        connlog_lines = [
            line for line in
            (root / "connlog.tsv").read_text().splitlines()
            if line.strip() and not line.startswith("#")]
        assert report.written["connlog"] == len(connlog_lines)
        assert report.written["kroot"] == len(
            json.loads((root / "kroot.json").read_text()))
        assert not report.faults

    def test_deterministic_across_identical_bundles(self, world, tmp_path):
        plan = FaultPlan.uniform(seed=5, rate=0.05)
        first = plan.apply(fresh_bundle(world, tmp_path / "a"))
        second = plan.apply(fresh_bundle(world, tmp_path / "b"))
        strip = lambda report: [
            (f.kind, f.line, f.records_delta) for f in report.faults]
        assert strip(first) == strip(second)
        assert (tmp_path / "a" / "connlog.tsv").read_text() \
            == (tmp_path / "b" / "connlog.tsv").read_text()

    def test_connlog_targets_disjoint(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        report = FaultPlan.uniform(seed=5, rate=0.1).apply(root)
        destructive = [
            f.line for f in report.faults
            if f.kind in (FaultKind.CONNLOG_GARBLED,
                          FaultKind.CONNLOG_TRUNCATED,
                          FaultKind.CONNLOG_DUPLICATED)]
        assert len(destructive) == len(set(destructive))
        swapped = {
            line for f in report.faults
            if f.kind is FaultKind.CONNLOG_OUT_OF_ORDER
            for line in (f.line, f.line + 1)}
        assert swapped.isdisjoint(destructive)

    def test_expected_records_tracks_deltas(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        plan = FaultPlan(seed=3, connlog_duplicated=0.1,
                         kroot_missing_series=2)
        report = plan.apply(root)
        dups = report.count(FaultKind.CONNLOG_DUPLICATED)
        assert dups > 0
        assert (report.expected_records("connlog")
                == report.written["connlog"] + dups)
        assert (report.expected_records("kroot")
                == report.written["kroot"] - 2)

    def test_never_removes_last_pfx2as_month(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        n_months = len(list((root / "pfx2as").glob("*.txt")))
        FaultPlan(seed=2, pfx2as_missing_months=n_months + 5).apply(root)
        assert len(list((root / "pfx2as").glob("*.txt"))) == 1

    def test_drop_files_accounts_current_contents(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        plan = FaultPlan(seed=4, connlog_duplicated=0.1,
                         drop_files=("connlog.tsv",))
        report = plan.apply(root)
        assert not (root / "connlog.tsv").exists()
        # Duplicates were inserted before the drop, so the dropped file
        # held written + dups records; the net delta must cancel exactly.
        assert report.expected_records("connlog") == 0

    def test_unknown_drop_file_rejected(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        with pytest.raises(ValueError):
            FaultPlan(seed=1, drop_files=("meta.json",)).apply(root)


class TestFaultReport:
    def test_render_and_to_dict(self, world, tmp_path):
        root = fresh_bundle(world, tmp_path / "b")
        report = FaultPlan.uniform(seed=5, rate=0.05).apply(root)
        text = report.render()
        assert "seed 5" in text
        assert FaultKind.CONNLOG_GARBLED.value in text
        payload = report.to_dict()
        assert payload["seed"] == 5
        assert len(payload["faults"]) == len(report.faults)
        assert payload["written"] == report.written

    def test_empty_report(self):
        report = FaultReport(seed=0)
        assert report.records_delta("connlog") == 0
        assert report.expected_records("connlog") == 0


class TestFaultsCli:
    def test_corrupts_in_place(self, world, tmp_path, capsys):
        from repro.faults.cli import main
        root = fresh_bundle(world, tmp_path / "b")
        before = (root / "connlog.tsv").read_text()
        assert main([str(root), "--seed", "1", "--rate", "0.05"]) == 0
        assert "injected" in capsys.readouterr().out
        assert (root / "connlog.tsv").read_text() != before

    def test_json_output_and_drop(self, world, tmp_path, capsys):
        from repro.faults.cli import main
        root = fresh_bundle(world, tmp_path / "b")
        assert main([str(root), "--seed", "1", "--rate", "0.0",
                     "--drop", "uptime.tsv", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        kinds = {fault["kind"] for fault in payload["faults"]}
        assert FaultKind.BUNDLE_MISSING_FILE.value in kinds
        assert not (root / "uptime.tsv").exists()
