"""Tests for repro.util.rng."""

import pytest

from repro.util import rng


class TestSubstream:
    def test_same_path_same_sequence(self):
        a = rng.substream(7, "probe", 12, "power")
        b = rng.substream(7, "probe", 12, "power")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_paths_differ(self):
        a = rng.substream(7, "probe", 12)
        b = rng.substream(7, "probe", 13)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = rng.substream(1, "x")
        b = rng.substream(2, "x")
        assert a.random() != b.random()


class TestPoissonArrivals:
    def test_zero_rate_no_arrivals(self):
        stream = rng.substream(0, "t")
        assert rng.poisson_arrivals(stream, 0.0, 0.0, 1e6) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            rng.poisson_arrivals(rng.substream(0, "t"), -1.0, 0, 1)

    def test_arrivals_sorted_and_in_window(self):
        stream = rng.substream(3, "arr")
        arrivals = rng.poisson_arrivals(stream, 1 / 100.0, 50.0, 5000.0)
        assert arrivals == sorted(arrivals)
        assert all(50.0 <= t < 5000.0 for t in arrivals)

    def test_rate_controls_expected_count(self):
        stream = rng.substream(11, "arr")
        arrivals = rng.poisson_arrivals(stream, 1 / 10.0, 0.0, 100000.0)
        # Expected 10,000 arrivals; allow a generous band.
        assert 9000 < len(arrivals) < 11000


class TestLognormal:
    def test_rejects_nonpositive_median(self):
        with pytest.raises(ValueError):
            rng.lognormal_from_median(rng.substream(0, "l"), 0.0, 1.0)

    def test_median_is_approximately_respected(self):
        stream = rng.substream(5, "log")
        samples = sorted(
            rng.lognormal_from_median(stream, 240.0, 1.0) for _ in range(4001)
        )
        assert 200 < samples[2000] < 290

    def test_zero_sigma_is_deterministic(self):
        stream = rng.substream(5, "log")
        assert rng.lognormal_from_median(stream, 60.0, 0.0) == pytest.approx(60.0)


class TestWeightedChoice:
    def test_single_item(self):
        assert rng.weighted_choice(rng.substream(0, "w"), ["a"], [1.0]) == "a"

    def test_zero_weight_never_chosen(self):
        stream = rng.substream(9, "w")
        picks = {rng.weighted_choice(stream, ["a", "b"], [0.0, 1.0])
                 for _ in range(50)}
        assert picks == {"b"}

    def test_validation(self):
        stream = rng.substream(0, "w")
        with pytest.raises(ValueError):
            rng.weighted_choice(stream, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            rng.weighted_choice(stream, [], [])
        with pytest.raises(ValueError):
            rng.weighted_choice(stream, ["a", "b"], [0.0, 0.0])

    def test_weights_bias_outcomes(self):
        stream = rng.substream(4, "w")
        picks = [rng.weighted_choice(stream, ["a", "b"], [9.0, 1.0])
                 for _ in range(2000)]
        assert picks.count("a") > 1600
