"""Tests for repro.util.colpack: the columnar container codec.

The format is a wire contract (RPR010): cache artifacts written by one
process are read by later runs of different processes, so the suite
leans on property-based round-trips (pack -> bytes -> unpack, and
write -> mmap load) plus explicit corruption handling — a damaged file
must raise :class:`ColpackError`, never misparse.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import colpack
from repro.util.colpack import ColpackError

pytestmark = pytest.mark.skipif(not colpack.HAVE_NUMPY,
                                reason="colpack requires numpy")

#: Every dtype kind the format allows, at a few widths.
DTYPES = ("int8", "int16", "int32", "int64",
          "uint8", "uint16", "uint32", "uint64",
          "float32", "float64", "bool")


def column_strategy():
    def build(dtype_name, values):
        if dtype_name == "bool":
            return np.asarray([bool(v % 2) for v in values], dtype=bool)
        dtype = np.dtype(dtype_name)
        if dtype.kind == "f":
            return np.asarray(values, dtype=dtype)
        info = np.iinfo(dtype)
        clipped = [max(info.min, min(info.max, v)) for v in values]
        return np.asarray(clipped, dtype=dtype)

    return st.builds(
        build,
        st.sampled_from(DTYPES),
        st.lists(st.integers(min_value=-2**40, max_value=2**40),
                 max_size=40))


columns_strategy = st.dictionaries(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
    column_strategy(), max_size=6)

meta_strategy = st.dictionaries(
    st.text(alphabet="xyz", min_size=1, max_size=4),
    st.one_of(st.integers(min_value=-10**6, max_value=10**6),
              st.text(max_size=8),
              st.lists(st.text(max_size=4), max_size=3)),
    max_size=4)


def assert_containers_equal(left: colpack.Columnar,
                            right: colpack.Columnar) -> None:
    assert left.schema == right.schema
    assert left.meta == right.meta
    assert sorted(left.columns) == sorted(right.columns)
    for name, array in left.columns.items():
        other = right.columns[name]
        assert array.dtype == other.dtype
        np.testing.assert_array_equal(array, other)


class TestRoundTrip:
    @given(meta=meta_strategy, columns=columns_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_identity(self, meta, columns):
        blob = colpack.pack("probe-things", meta, columns)
        container = colpack.unpack(blob)
        assert_containers_equal(
            colpack.Columnar("probe-things", dict(meta), columns), container)

    @given(meta=meta_strategy, columns=columns_strategy)
    @settings(max_examples=25, deadline=None)
    def test_write_then_mmap_load_identity(self, meta, columns):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "artifact.col"
            colpack.write(path, "probe-things", meta, columns)
            for use_mmap in (True, False):
                container = colpack.load(path, use_mmap=use_mmap)
                assert_containers_equal(
                    colpack.Columnar("probe-things", dict(meta), columns),
                    container)

    def test_pack_is_deterministic_across_dict_order(self):
        a = np.arange(5, dtype=np.int64)
        b = np.ones(3, dtype=np.float64)
        forward = colpack.pack("s", {"k": 1, "j": 2}, {"a": a, "b": b})
        reverse = colpack.pack("s", {"j": 2, "k": 1}, {"b": b, "a": a})
        assert forward == reverse

    def test_unpacked_columns_are_views_not_copies(self):
        blob = colpack.pack("s", {}, {"a": np.arange(100, dtype=np.int64)})
        container = colpack.unpack(blob)
        assert container.column("a").base is not None

    def test_column_payloads_are_aligned(self):
        columns = {"a": np.arange(3, dtype=np.int8),
                   "b": np.arange(7, dtype=np.float64),
                   "c": np.arange(11, dtype=np.int32)}
        blob = colpack.pack("s", {}, columns)
        container = colpack.unpack(blob)
        for name in columns:
            array = container.column(name)
            offset = array.__array_interface__["data"][0]
            assert offset % array.dtype.itemsize == 0

    def test_missing_column_error_names_alternatives(self):
        container = colpack.unpack(
            colpack.pack("s", {}, {"a": np.zeros(1, dtype=np.int64)}))
        with pytest.raises(ColpackError, match="no column 'z'.*a"):
            container.column("z")


class TestRejection:
    def test_object_dtype_rejected_at_pack(self):
        with pytest.raises(ColpackError, match="not allowed"):
            colpack.pack("s", {}, {"a": np.asarray(["x"], dtype=object)})

    def test_string_dtype_rejected_at_pack(self):
        with pytest.raises(ColpackError, match="not allowed"):
            colpack.pack("s", {}, {"a": np.asarray(["x", "y"])})

    def test_big_endian_column_rejected(self):
        array = np.arange(4, dtype=np.dtype(">i8"))
        with pytest.raises(ColpackError, match="endian"):
            colpack.pack("s", {}, {"a": array})

    def test_bad_magic_rejected(self):
        with pytest.raises(ColpackError, match="bad magic"):
            colpack.unpack(b"NOPE" + b"\x00" * 32)

    def test_unknown_version_rejected(self):
        blob = bytearray(colpack.pack("s", {}, {}))
        blob[4:6] = (colpack.FORMAT_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(ColpackError, match="version"):
            colpack.unpack(bytes(blob))

    def test_truncated_header_rejected(self):
        blob = colpack.pack("s", {}, {"a": np.arange(4, dtype=np.int64)})
        with pytest.raises(ColpackError, match="truncated"):
            colpack.unpack(blob[:20])

    def test_truncated_column_rejected(self):
        blob = colpack.pack("s", {}, {"a": np.arange(64, dtype=np.int64)})
        with pytest.raises(ColpackError, match="truncated column 'a'"):
            colpack.unpack(blob[:-64])

    def test_corrupt_header_json_rejected(self):
        blob = bytearray(colpack.pack("s", {}, {}))
        blob[16] = ord("!")  # first byte of the header JSON
        with pytest.raises(ColpackError, match="corrupt colpack header"):
            colpack.unpack(bytes(blob))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.col"
        path.write_bytes(b"")
        with pytest.raises(ColpackError, match="empty"):
            colpack.load(path)


class _Pair:
    """Minimal columnar-capable class for registry tests."""

    __columnar__ = "test-pair"

    def __init__(self, left, right, label):
        self.left = left
        self.right = right
        self.label = label

    def to_columns(self):
        return {"label": self.label}, {"left": self.left, "right": self.right}

    @classmethod
    def from_columns(cls, meta, columns):
        return cls(columns["left"], columns["right"], meta["label"])


colpack.register(_Pair)


class TestRegistry:
    def test_object_round_trip(self):
        pair = _Pair(np.arange(4, dtype=np.int64),
                     np.ones(2, dtype=np.float64), "hello")
        back = colpack.unpack_object(colpack.pack_object(pair))
        assert isinstance(back, _Pair)
        assert back.label == "hello"
        np.testing.assert_array_equal(back.left, pair.left)
        np.testing.assert_array_equal(back.right, pair.right)

    def test_object_file_round_trip(self, tmp_path):
        pair = _Pair(np.arange(4, dtype=np.int64),
                     np.zeros(0, dtype=np.uint8), "x")
        path = tmp_path / "pair.col"
        colpack.write_object(path, pair)
        back = colpack.load_object(path)
        assert isinstance(back, _Pair)
        np.testing.assert_array_equal(back.left, pair.left)

    def test_schema_of_only_matches_registered(self):
        assert colpack.schema_of(_Pair(None, None, "")) == "test-pair"
        assert colpack.schema_of(object()) is None
        assert colpack.schema_of({"not": "registered"}) is None

    def test_unregistered_object_rejected(self):
        with pytest.raises(ColpackError, match="not a registered"):
            colpack.pack_object(object())

    def test_unknown_schema_rejected_at_unpack(self):
        blob = colpack.pack("never-registered", {}, {})
        with pytest.raises(ColpackError, match="no columnar class"):
            colpack.unpack_object(blob)

    def test_register_requires_schema_tag(self):
        with pytest.raises(ValueError, match="__columnar__"):
            colpack.register(type("Tagless", (), {}))

    def test_register_rejects_schema_collision(self):
        clone = type("PairClone", (), {"__columnar__": "test-pair"})
        with pytest.raises(ValueError, match="already registered"):
            colpack.register(clone)

    def test_register_is_idempotent_for_same_class(self):
        assert colpack.register(_Pair) is _Pair
