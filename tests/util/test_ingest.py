"""Tests for repro.util.ingest (read policy + ingest accounting)."""

from repro.util.ingest import (
    DatasetIngest,
    IngestAction,
    IngestReport,
    ReadPolicy,
    format_line_error,
)


class TestFormatLineError:
    def test_unified_shape(self):
        assert (format_line_error("data/connlog.tsv", 7, "bad record")
                == "data/connlog.tsv: line 7: bad record")

    def test_accepts_exception_objects(self):
        message = format_line_error("x", 1, ValueError("boom"))
        assert message.endswith("boom")


class TestIngestReport:
    def test_counts_accumulate_per_dataset(self):
        report = IngestReport()
        report.parsed("connlog", 3)
        report.repaired("connlog", "f", 4, "re-sorted")
        report.quarantined("connlog", "f", 9, "garbled")
        report.parsed("uptime")
        ingest = report.dataset("connlog")
        assert (ingest.parsed, ingest.repaired, ingest.quarantined) == (3, 1, 1)
        assert ingest.total == 5
        assert report.dataset("uptime").total == 1

    def test_notes_do_not_enter_record_counts(self):
        report = IngestReport()
        report.note("pfx2as", "dir", "month missing")
        assert report.dataset("pfx2as").total == 0
        assert len(report.issues_for("pfx2as")) == 1
        assert report.issues[0].action is IngestAction.NOTE

    def test_clean_flag(self):
        report = IngestReport()
        report.parsed("connlog")
        assert report.clean
        report.quarantined("connlog", "f", 1, "bad")
        assert not report.clean

    def test_render_lists_datasets_and_issues(self):
        report = IngestReport()
        report.parsed("connlog", 2)
        report.quarantined("connlog", "log.tsv", 5, "garbled")
        text = report.render()
        assert "connlog" in text
        assert "log.tsv:5" in text
        assert "garbled" in text

    def test_render_truncates_issue_list(self):
        report = IngestReport()
        for line in range(30):
            report.quarantined("connlog", "f", line, "bad")
        assert "... 10 more" in report.render(max_issues=20)

    def test_to_dict_round_trips_counts(self):
        report = IngestReport()
        report.repaired("uptime", "u.tsv", 2, "unwrapped")
        payload = report.to_dict()
        assert payload["datasets"] == [DatasetIngest(
            "uptime", repaired=1).to_dict()]
        assert payload["issues"][0]["action"] == "repaired"

    def test_policy_values(self):
        assert ReadPolicy("strict") is ReadPolicy.STRICT
        assert ReadPolicy("repair") is ReadPolicy.REPAIR
