"""Tests for repro.util.intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import Interval, IntervalSet


def spans(int_set):
    return [(iv.start, iv.end) for iv in int_set]


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5.0, 4.0)

    def test_length_and_empty(self):
        assert Interval(1.0, 4.0).length == 3.0
        assert Interval(2.0, 2.0).is_empty()
        assert not Interval(2.0, 3.0).is_empty()

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.5)
        assert not iv.contains(2.0)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 1).overlaps(Interval(1, 2))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_shift(self):
        assert Interval(1, 2).shift(10) == Interval(11, 12)


class TestIntervalSetAdd:
    def test_empty_interval_ignored(self):
        s = IntervalSet()
        s.add(Interval(1, 1))
        assert len(s) == 0

    def test_disjoint_kept_sorted(self):
        s = IntervalSet()
        s.add_span(5, 6)
        s.add_span(1, 2)
        assert spans(s) == [(1, 2), (5, 6)]

    def test_touching_coalesce(self):
        s = IntervalSet()
        s.add_span(1, 2)
        s.add_span(2, 3)
        assert spans(s) == [(1, 3)]

    def test_overlapping_coalesce_multiple(self):
        s = IntervalSet()
        s.add_span(1, 2)
        s.add_span(4, 5)
        s.add_span(7, 8)
        s.add_span(1.5, 7.5)
        assert spans(s) == [(1, 8)]

    def test_contained_insert_noop_shape(self):
        s = IntervalSet()
        s.add_span(0, 10)
        s.add_span(3, 4)
        assert spans(s) == [(0, 10)]


class TestIntervalSetQueries:
    def setup_method(self):
        self.s = IntervalSet([Interval(0, 2), Interval(5, 7), Interval(10, 11)])

    def test_contains(self):
        assert self.s.contains(0)
        assert self.s.contains(6.5)
        assert not self.s.contains(2)
        assert not self.s.contains(9)

    def test_overlapping(self):
        found = self.s.overlapping(Interval(1, 6))
        assert [(iv.start, iv.end) for iv in found] == [(0, 2), (5, 7)]

    def test_overlapping_empty_window(self):
        assert self.s.overlapping(Interval(3, 3)) == []

    def test_intersect_span(self):
        clipped = self.s.intersect_span(1, 10.5)
        assert spans(clipped) == [(1, 2), (5, 7), (10, 10.5)]

    def test_total_measure(self):
        assert self.s.total_measure() == pytest.approx(2 + 2 + 1)

    def test_gaps_within(self):
        holes = self.s.gaps_within(0, 12)
        assert [(iv.start, iv.end) for iv in holes] == [(2, 5), (7, 10), (11, 12)]

    def test_gaps_within_no_members(self):
        empty = IntervalSet()
        assert [(iv.start, iv.end) for iv in empty.gaps_within(3, 4)] == [(3, 4)]


@st.composite
def interval_lists(draw):
    n = draw(st.integers(0, 30))
    out = []
    for _ in range(n):
        a = draw(st.integers(0, 100))
        b = draw(st.integers(0, 100))
        lo, hi = min(a, b), max(a, b)
        out.append(Interval(float(lo), float(hi)))
    return out


class TestIntervalSetProperties:
    @given(interval_lists())
    def test_normalized_disjoint_and_sorted(self, intervals):
        s = IntervalSet(intervals)
        members = list(s)
        for left, right in zip(members, members[1:]):
            assert left.end < right.start

    @given(interval_lists())
    def test_insertion_order_irrelevant(self, intervals):
        forward = IntervalSet(intervals)
        backward = IntervalSet(reversed(intervals))
        assert forward == backward

    @given(interval_lists(), st.integers(0, 100))
    def test_contains_matches_naive(self, intervals, point):
        s = IntervalSet(intervals)
        naive = any(iv.contains(float(point)) for iv in intervals)
        assert s.contains(float(point)) == naive

    @given(interval_lists())
    def test_measure_plus_gaps_covers_window(self, intervals):
        s = IntervalSet(intervals)
        inside = s.intersect_span(0, 100).total_measure()
        holes = sum(iv.length for iv in s.gaps_within(0, 100))
        assert inside + holes == pytest.approx(100)
