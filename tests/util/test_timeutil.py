"""Tests for repro.util.timeutil."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import timeutil


class TestConstants:
    def test_year_2015_bounds_span_a_non_leap_year(self):
        assert timeutil.YEAR_2015_END - timeutil.YEAR_2015_START == 365 * timeutil.DAY

    def test_week_is_seven_days(self):
        assert timeutil.WEEK == 7 * timeutil.DAY


class TestEpoch:
    def test_epoch_of_2015_start(self):
        assert timeutil.epoch(2015, 1, 1) == timeutil.YEAR_2015_START

    def test_epoch_respects_time_fields(self):
        base = timeutil.epoch(2015, 3, 10)
        assert timeutil.epoch(2015, 3, 10, 1, 2, 3) == base + 3723

    def test_hours_and_days_roundtrip(self):
        assert timeutil.to_hours(timeutil.hours(5.5)) == pytest.approx(5.5)
        assert timeutil.days(2) == 48 * timeutil.HOUR


class TestCalendar:
    def test_hour_of_day(self):
        assert timeutil.hour_of_day(timeutil.epoch(2015, 6, 15, 23, 59)) == 23
        assert timeutil.hour_of_day(timeutil.epoch(2015, 6, 16, 0, 0)) == 0

    def test_day_of_year(self):
        assert timeutil.day_of_year(timeutil.epoch(2015, 1, 1)) == 1
        assert timeutil.day_of_year(timeutil.epoch(2015, 12, 31)) == 365

    def test_month_of(self):
        assert timeutil.month_of(timeutil.epoch(2015, 7, 31, 23)) == (2015, 7)

    def test_iter_month_starts_covers_year(self):
        months = list(timeutil.iter_month_starts(
            timeutil.YEAR_2015_START, timeutil.YEAR_2015_END))
        assert len(months) == 12
        assert months[0][:2] == (2015, 1)
        assert months[-1][:2] == (2015, 12)

    def test_iter_month_starts_partial_window(self):
        start = timeutil.epoch(2015, 11, 20)
        end = timeutil.epoch(2016, 1, 5)
        months = [(y, m) for y, m, _ in timeutil.iter_month_starts(start, end)]
        assert months == [(2015, 11), (2015, 12), (2016, 1)]


class TestLogTimeFormat:
    def test_format_matches_paper_table1_style(self):
        stamp = timeutil.epoch(2015, 1, 1, 3, 22, 16)
        assert timeutil.format_log_time(stamp) == "Jan  1 03:22:16"

    def test_format_two_digit_day(self):
        stamp = timeutil.epoch(2015, 12, 31, 0, 0, 0)
        assert timeutil.format_log_time(stamp) == "Dec 31 00:00:00"

    def test_parse_roundtrip(self):
        stamp = timeutil.epoch(2015, 8, 9, 17, 5, 59)
        assert timeutil.parse_log_time(timeutil.format_log_time(stamp)) == stamp

    @pytest.mark.parametrize("bad", ["", "Jan 1", "Foo  1 00:00:00",
                                     "Jan  1 00:00", "Jan 1 00:00:00:00"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            timeutil.parse_log_time(bad)

    @given(st.integers(0, 365 * 86400 - 1))
    def test_parse_format_roundtrip_property(self, offset):
        stamp = timeutil.YEAR_2015_START + offset
        assert timeutil.parse_log_time(timeutil.format_log_time(stamp)) == stamp
