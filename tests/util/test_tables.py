"""Tests for repro.util.tables."""

import pytest

from repro.util import tables


class TestRenderTable:
    def test_alignment_and_title(self):
        text = tables.render_table(
            ["AS", "N"], [["Orange", 122], ["BT", 67]], title="Table 5")
        lines = text.splitlines()
        assert lines[0] == "Table 5"
        assert lines[1].startswith("AS")
        assert "Orange" in lines[3]
        # Columns align: every data row has the separator at the same offset.
        assert lines[3].index("|") == lines[4].index("|")

    def test_float_formatting(self):
        text = tables.render_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tables.render_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = tables.render_table(["h"], [["v"]])
        assert text.splitlines()[0] == "h"


class TestPercent:
    def test_rounding(self):
        assert tables.percent(0.757) == "76%"
        assert tables.percent(0.5, digits=1) == "50.0%"
