"""Tests for repro.util.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import stats


class TestEmpiricalCdf:
    def test_empty(self):
        assert stats.empirical_cdf([]) == []

    def test_steps_collapse_duplicates(self):
        points = stats.empirical_cdf([1.0, 1.0, 2.0, 3.0])
        assert [(p.value, p.fraction) for p in points] == [
            (1.0, 0.5), (2.0, 0.75), (3.0, 1.0)]

    def test_last_fraction_is_one(self):
        points = stats.empirical_cdf([5.0, -1.0, 2.0])
        assert points[-1].fraction == pytest.approx(1.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_monotone_property(self, values):
        points = stats.empirical_cdf(values)
        fractions = [p.fraction for p in points]
        assert all(a < b for a, b in zip(fractions, fractions[1:])) or len(fractions) == 1
        assert points[-1].fraction == pytest.approx(1.0)


class TestWeightedCdf:
    def test_weights_accumulate(self):
        points = stats.weighted_cdf([(24.0, 3.0), (12.0, 1.0)])
        assert [(p.value, pytest.approx(p.fraction)) for p in points] == [
            (12.0, pytest.approx(0.25)), (24.0, pytest.approx(1.0))]

    def test_duplicate_values_merge(self):
        points = stats.weighted_cdf([(5.0, 1.0), (5.0, 1.0)])
        assert len(points) == 1
        assert points[0].fraction == pytest.approx(1.0)

    def test_zero_total_is_empty(self):
        assert stats.weighted_cdf([(1.0, 0.0)]) == []

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            stats.weighted_cdf([(1.0, -0.5)])


class TestCdfEvaluation:
    def setup_method(self):
        self.points = stats.empirical_cdf([1.0, 2.0, 2.0, 4.0])

    def test_fraction_at(self):
        assert stats.cdf_fraction_at(self.points, 0.5) == 0.0
        assert stats.cdf_fraction_at(self.points, 1.0) == pytest.approx(0.25)
        assert stats.cdf_fraction_at(self.points, 3.0) == pytest.approx(0.75)
        assert stats.cdf_fraction_at(self.points, 10.0) == pytest.approx(1.0)

    def test_mass_at(self):
        assert stats.cdf_mass_at(self.points, 2.0) == pytest.approx(0.5)
        assert stats.cdf_mass_at(self.points, 3.0) == 0.0


class TestHistogram:
    def test_basic_binning(self):
        bins = stats.histogram([0.5, 1.5, 1.6, 2.5], [0, 1, 2, 3])
        assert [b.count for b in bins] == [1, 2, 1]

    def test_out_of_range_ignored(self):
        bins = stats.histogram([-1, 0, 2.9, 3.0, 99], [0, 1, 2, 3])
        assert sum(b.count for b in bins) == 2

    def test_right_edge_exclusive(self):
        bins = stats.histogram([1.0], [0, 1, 2])
        assert [b.count for b in bins] == [0, 1]

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            stats.histogram([], [0])
        with pytest.raises(ValueError):
            stats.histogram([], [0, 0, 1])

    @given(st.lists(st.floats(0, 10), max_size=100))
    def test_counts_conserved(self, values):
        edges = [0, 2, 4, 6, 8, 10]
        bins = stats.histogram(values, edges)
        in_range = sum(1 for v in values if 0 <= v < 10)
        assert sum(b.count for b in bins) == in_range


class TestSummaries:
    def test_mean(self):
        assert stats.mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            stats.mean([])

    def test_median_odd_even(self):
        assert stats.median([3, 1, 2]) == 2
        assert stats.median([4, 1, 2, 3]) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            stats.median([])

    def test_quantile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert stats.quantile(values, 0.0) == 1.0
        assert stats.quantile(values, 1.0) == 4.0
        assert stats.quantile(values, 0.5) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            stats.quantile(values, 1.5)
        with pytest.raises(ValueError):
            stats.quantile([], 0.5)

    def test_fraction_safe(self):
        assert stats.fraction(1, 2) == 0.5
        assert stats.fraction(1, 0) == 0.0
