"""Tests for repro.sim.timeline."""

import pytest

from repro.atlas.types import ProbeVersion
from repro.errors import SimulationError
from repro.isp.policy import build_plant
from repro.isp.pool import AddressPool, PoolPolicy
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.sim.outages import Interruption, InterruptionKind
from repro.sim.timeline import ProbeSimulator, Segment
from repro.util.rng import substream
from repro.util.timeutil import DAY, HOUR, MINUTE

WINDOW = 20 * DAY


def make_plant(access=AccessTechnology.PPP, prefix="192.0.2.0/24",
               seed=1, **overrides):
    kwargs = dict(
        name="T", asn=64496, country="DE", access=access,
        plan=AddressSpacePlan(num_prefixes=2, slash16_groups=1),
        pool_policy=PoolPolicy(),
    )
    kwargs.update(overrides)
    spec = IspSpec(**kwargs)
    pool = AddressPool([IPv4Prefix.parse(prefix),
                        IPv4Prefix.parse("198.51.100.0/24")], spec.pool_policy)
    return build_plant(spec, pool, seed)


def simulate(plant, interruptions=(), probe_id=1, seed=2, window=WINDOW,
             **kwargs):
    segment = Segment(plant, "cpe-1", 0.0, window)
    simulator = ProbeSimulator(
        probe_id, substream(seed, "probe", probe_id),
        [list(interruptions)], [segment], **kwargs)
    return simulator.run()


class TestQuietTimeline:
    def test_single_entry_spanning_window(self):
        output = simulate(make_plant(access=AccessTechnology.DHCP))
        assert len(output.entries) == 1
        entry = output.entries[0]
        assert entry.start == 0.0
        assert entry.end == WINDOW
        assert output.true_changes == []

    def test_uptime_record_at_first_connection(self):
        output = simulate(make_plant(access=AccessTechnology.DHCP))
        assert len(output.uptime_records) == 1
        record = output.uptime_records[0]
        assert record.timestamp == 0.0
        assert record.uptime >= 0.0


class TestPeriodicCuts:
    def test_daily_cuts_produce_daily_changes(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0)
        output = simulate(plant)
        # 20-day window, one cut per day minus reconnect drift.
        assert 17 <= len(output.true_changes) <= 20
        addresses = [e.address for e in output.entries]
        # Every cut renumbers: consecutive sessions never share an address.
        assert all(a != b for a, b in zip(addresses, addresses[1:]))

    def test_durations_cluster_just_under_period(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0)
        output = simulate(plant)
        inner = output.entries[1:-1]
        for entry in inner:
            assert 0.95 * DAY < entry.duration < DAY

    def test_gap_between_entries_is_change_delay(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0)
        output = simulate(plant)
        for left, right in zip(output.entries, output.entries[1:]):
            gap = right.start - left.end
            assert 15 * MINUTE <= gap <= 25 * MINUTE


class TestOutageHandling:
    def test_network_outage_recorded_and_renumbers_ppp(self):
        plant = make_plant(holds_state_fraction=0.0)
        outage = Interruption(InterruptionKind.NETWORK, 5 * DAY,
                              5 * DAY + HOUR)
        output = simulate(plant, [outage])
        assert len(output.entries) == 2
        assert output.entries[0].end == 5 * DAY
        assert output.entries[0].address != output.entries[1].address
        assert output.network_down.contains(5 * DAY + 10)
        assert not output.power_off.contains(5 * DAY + 10)
        assert output.true_changes == [5 * DAY + HOUR]

    def test_power_outage_with_fate_sharing_reboots_probe(self):
        plant = make_plant(access=AccessTechnology.DHCP,
                           churn_rate_per_hour=0.0, dhcp_change_prob=0.0)
        outage = Interruption(InterruptionKind.POWER, 5 * DAY, 5 * DAY + HOUR)
        output = simulate(plant, [outage], fate_sharing=True)
        assert output.power_off.contains(5 * DAY + 10)
        # Uptime counter reset: second record shows a fresh boot.
        second = output.uptime_records[1]
        assert second.uptime < 2 * HOUR
        assert second.boot_time == pytest.approx(5 * DAY + HOUR)

    def test_power_outage_without_fate_sharing_looks_like_network(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        outage = Interruption(InterruptionKind.POWER, 5 * DAY, 5 * DAY + HOUR)
        output = simulate(plant, [outage], fate_sharing=False)
        assert output.network_down.contains(5 * DAY + 10)
        assert not output.power_off.contains(5 * DAY + 10)

    def test_dhcp_short_outage_does_not_change_address(self):
        plant = make_plant(access=AccessTechnology.DHCP,
                           churn_rate_per_hour=0.0, dhcp_change_prob=0.0)
        outage = Interruption(InterruptionKind.NETWORK, 5 * DAY,
                              5 * DAY + 10 * MINUTE)
        output = simulate(plant, [outage])
        assert len(output.entries) == 2
        assert output.entries[0].address == output.entries[1].address
        assert output.true_changes == []
        # Unchanged address reconnects quickly.
        gap = output.entries[1].start - output.entries[0].end
        assert gap <= 10 * MINUTE + 4 * MINUTE

    def test_plain_break_splits_connection_without_outage(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        event = Interruption(InterruptionKind.BREAK, 5 * DAY, 5 * DAY)
        output = simulate(plant, [event])
        assert len(output.entries) == 2
        assert output.entries[0].address == output.entries[1].address
        assert len(output.network_down) == 0
        assert len(output.power_off) == 0


class TestFirmwareAndFragReboots:
    def test_firmware_campaign_causes_reboot_on_next_break(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        campaign = 3 * DAY
        event = Interruption(InterruptionKind.BREAK, 5 * DAY, 5 * DAY)
        output = simulate(plant, [event],
                          firmware_campaigns=(campaign,))
        # The probe rebooted inside the gap following the break.
        assert len(output.power_off) == 1
        reboot = list(output.power_off)[0]
        assert 5 * DAY < reboot.end <= 5 * DAY + 5 * MINUTE
        assert output.uptime_records[1].uptime < 5 * MINUTE

    def test_campaign_applied_only_once(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        events = [Interruption(InterruptionKind.BREAK, 5 * DAY, 5 * DAY),
                  Interruption(InterruptionKind.BREAK, 8 * DAY, 8 * DAY)]
        output = simulate(plant, events, firmware_campaigns=(3 * DAY,))
        assert len(output.power_off) == 1

    def test_v3_probe_never_frag_reboots(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0)
        output = simulate(plant, version=ProbeVersion.V3,
                          frag_reboot_prob=1.0)
        assert len(output.power_off) == 0

    def test_v1_probe_frag_reboots_on_address_change(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0, skip_prob=0.0,
                           offschedule_prob=0.0)
        output = simulate(plant, version=ProbeVersion.V1,
                          frag_reboot_prob=1.0)
        # One reboot per daily address change.
        assert len(output.power_off) >= 15


class TestConfounders:
    def test_v6_only_probe(self):
        output = simulate(None, family_mode="v6", ipv6_address="2001:db8::1")
        assert all(e.is_ipv6 for e in output.entries)

    def test_v6_requires_address(self):
        with pytest.raises(SimulationError):
            simulate(None, family_mode="v6")

    def test_dual_stack_alternates_families(self):
        plant = make_plant(period=DAY, periodic_fraction=1.0)
        output = simulate(plant, family_mode="dual",
                          ipv6_address="2001:db8::1", seed=4)
        families = {e.is_ipv6 for e in output.entries}
        assert families == {True, False}

    def test_multihomed_alternates_fixed_and_dynamic(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        fixed = IPv4Address.parse("203.0.113.7")
        events = [Interruption(InterruptionKind.BREAK, float(d * DAY),
                               float(d * DAY)) for d in range(1, 10)]
        output = simulate(plant, events, fixed_address=fixed)
        addresses = [e.address for e in output.entries]
        assert fixed in addresses
        assert len(set(addresses)) == 2
        # The fixed address appears in multiple non-adjacent runs.
        runs = sum(1 for i, a in enumerate(addresses)
                   if a == fixed and (i == 0 or addresses[i - 1] != fixed))
        assert runs >= 3

    def test_testing_first_entry(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        output = simulate(plant, testing_first=True)
        assert str(output.entries[0].address) == "193.0.0.78"
        assert output.entries[1].address != output.entries[0].address


class TestSegments:
    def test_mover_changes_asns(self):
        plant_a = make_plant(access=AccessTechnology.DHCP,
                             prefix="192.0.2.0/24")
        plant_b = make_plant(access=AccessTechnology.DHCP, asn=64497,
                             prefix="203.0.113.0/24")
        segments = [Segment(plant_a, "c1", 0.0, 10 * DAY),
                    Segment(plant_b, "c2", 10 * DAY + HOUR, WINDOW)]
        simulator = ProbeSimulator(1, substream(1, "m"), [[], []], segments)
        output = simulator.run()
        assert len(output.entries) == 2
        first, second = output.entries
        assert IPv4Prefix.parse("192.0.2.0/24").contains(first.address)
        assert IPv4Prefix.parse("203.0.113.0/24").contains(second.address)

    def test_overlapping_segments_rejected(self):
        plant = make_plant(access=AccessTechnology.DHCP)
        segments = [Segment(plant, "c1", 0.0, 10 * DAY),
                    Segment(plant, "c2", 5 * DAY, WINDOW)]
        simulator = ProbeSimulator(1, substream(1, "m"), [[], []], segments)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_segment_validation(self):
        with pytest.raises(SimulationError):
            Segment(None, "c", 5.0, 5.0)
        with pytest.raises(SimulationError):
            ProbeSimulator(1, substream(1, "m"), [], [])
        plant = make_plant()
        with pytest.raises(SimulationError):
            ProbeSimulator(1, substream(1, "m"), [],
                           [Segment(plant, "c", 0.0, 1.0)])
