"""Integration tests for administrative renumbering (spec -> sim -> detection)."""

import pytest

from repro.errors import SimulationError
from repro.core.pipeline import pipeline_for_world
from repro.isp.pool import PoolPolicy
from repro.isp.profiles import IspProfile
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.sim.outages import Interruption, InterruptionKind, inject_event
from repro.sim.scenario import ScenarioConfig
from repro.sim.world import build_world
from repro.util import timeutil


def admin_spec(access=AccessTechnology.DHCP, day=40, **overrides):
    kwargs = dict(
        name="Renum", asn=64496, country="DE", access=access,
        plan=AddressSpacePlan(num_prefixes=3, slash16_groups=3,
                              slash8_groups=3),
        pool_policy=PoolPolicy(),
        admin_renumber_day=day,
        churn_rate_per_hour=0.0, dhcp_change_prob=0.0,
    )
    kwargs.update(overrides)
    return IspSpec(**kwargs)


class TestSpecValidation:
    def test_valid(self):
        assert admin_spec().admin_renumber_day == 40

    def test_day_range(self):
        with pytest.raises(SimulationError):
            admin_spec(day=0)
        with pytest.raises(SimulationError):
            admin_spec(day=400)

    def test_needs_reserve_prefix(self):
        with pytest.raises(SimulationError):
            admin_spec(plan=AddressSpacePlan(num_prefixes=1,
                                             slash16_groups=1))


class TestInjectEvent:
    def test_insert_into_empty(self):
        admin = Interruption(InterruptionKind.ADMIN, 100.0, 100.0)
        assert inject_event([], admin) == [admin]

    def test_colliding_neighbours_evicted(self):
        near = Interruption(InterruptionKind.BREAK, 90.0, 90.0)
        far = Interruption(InterruptionKind.NETWORK, 90000.0, 90300.0)
        admin = Interruption(InterruptionKind.ADMIN, 100.0, 100.0)
        events = inject_event([near, far], admin)
        assert near not in events
        assert far in events
        assert admin in events
        assert events == sorted(events, key=lambda e: e.start)


class TestWorldIntegration:
    def build(self, access):
        config = ScenarioConfig(
            profiles=(IspProfile(admin_spec(access=access), 8),),
            seed=11,
            start=timeutil.YEAR_2015_START,
            end=timeutil.YEAR_2015_START + 80 * timeutil.DAY,
        )
        return build_world(config)

    @pytest.mark.parametrize("access", [AccessTechnology.DHCP,
                                        AccessTechnology.PPP])
    def test_every_probe_migrates_to_reserve_prefix(self, access):
        world = self.build(access)
        results = pipeline_for_world(world).run()
        reserve = None
        for probe_id in results.asn_by_probe:
            entries = results.filter_report.verdicts[probe_id].entries
            first, last = entries[0], entries[-1]
            first_prefix = world.ip2as.bgp_prefix(first.address, first.start)
            last_prefix = world.ip2as.bgp_prefix(last.address, last.start)
            assert first_prefix != last_prefix
            if reserve is None:
                reserve = last_prefix
            # Everyone lands in the same migration prefix.
            assert last_prefix == reserve

    def test_detection_finds_the_event(self):
        world = self.build(AccessTechnology.DHCP)
        results = pipeline_for_world(world).run()
        events = results.administrative_renumberings(
            world.config.start, min_probes=4)
        assert len(events) == 1
        assert abs((events[0].day_index + 1) - 40) <= 1
        assert events[0].changed_fraction > 0.8
