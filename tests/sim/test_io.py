"""Tests for repro.sim.io (dataset bundle round-trips)."""

import json

import pytest

from repro.core.pipeline import pipeline_for_bundle, pipeline_for_world
from repro.errors import DatasetError, ParseError
from repro.experiments.scenarios import small_world
from repro.sim.io import (
    DatasetBundle,
    load_bundle,
    write_world,
)


@pytest.fixture(scope="module")
def world():
    return small_world(seed=17, days=25)


@pytest.fixture(scope="module")
def bundle_dir(world, tmp_path_factory):
    return write_world(world, tmp_path_factory.mktemp("bundle"))


class TestWrite:
    def test_expected_files_present(self, bundle_dir):
        for name in ("meta.json", "archive.tsv", "connlog.tsv",
                     "uptime.tsv", "kroot.json"):
            assert (bundle_dir / name).exists(), name
        assert list((bundle_dir / "pfx2as").glob("*.txt"))

    def test_meta_contents(self, bundle_dir, world):
        meta = json.loads((bundle_dir / "meta.json").read_text())
        assert meta["seed"] == world.config.seed
        assert "64496" in meta["as_names"]


class TestLoad:
    def test_roundtrip_preserves_datasets(self, bundle_dir, world):
        bundle = load_bundle(bundle_dir)
        assert isinstance(bundle, DatasetBundle)
        assert bundle.connlog.entry_count() == world.connlog.entry_count()
        assert bundle.archive.probe_ids() == world.archive.probe_ids()
        assert bundle.uptime.probe_ids() == world.uptime.probe_ids()
        assert bundle.kroot.probe_ids() == world.kroot.probe_ids()
        assert bundle.ip2as.months() == world.ip2as.months()

    def test_kroot_series_behaviour_preserved(self, bundle_dir, world):
        bundle = load_bundle(bundle_dir)
        for probe_id in world.kroot.probe_ids()[:5]:
            original = world.kroot.series(probe_id)
            loaded = bundle.kroot.series(probe_id)
            window = (original.observed_start,
                      original.observed_start + 4 * 3600)
            assert ([r.success for r in loaded.records(*window)]
                    == [r.success for r in original.records(*window)])

    def test_missing_bundle_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_bundle(tmp_path / "nonexistent")

    def test_bad_version_rejected(self, tmp_path, world):
        root = write_world(world, tmp_path / "b")
        meta = json.loads((root / "meta.json").read_text())
        meta["bundle_version"] = 99
        (root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DatasetError):
            load_bundle(root)

    def test_corrupt_kroot_rejected(self, tmp_path, world):
        root = write_world(world, tmp_path / "c")
        (root / "kroot.json").write_text('[{"probe_id": 1}]')
        with pytest.raises(ParseError):
            load_bundle(root)


class TestStrictFailures:
    """DESIGN §6 failure-injection matrix under ReadPolicy.STRICT."""

    @pytest.fixture()
    def root(self, world, tmp_path):
        return write_world(world, tmp_path / "bundle")

    @pytest.mark.parametrize("name", ["archive.tsv", "connlog.tsv",
                                      "uptime.tsv", "kroot.json"])
    def test_missing_bundle_file_raises_dataset_error(self, root, name):
        (root / name).unlink()
        with pytest.raises(DatasetError, match="bundle file missing"):
            load_bundle(root)

    def test_malformed_meta_json_raises_dataset_error(self, root):
        (root / "meta.json").write_text("{not json")
        with pytest.raises(DatasetError, match="malformed JSON"):
            load_bundle(root)

    def test_malformed_archive_line_names_file_and_line(self, root):
        with open(root / "archive.tsv", "a") as stream:
            stream.write("x\tDE\tEU\t3\n")
        lines = (root / "archive.tsv").read_text().splitlines()
        with pytest.raises(ParseError,
                           match=r"archive\.tsv: line %d:" % len(lines)):
            load_bundle(root)

    def test_bad_archive_version_names_file_and_line(self, root):
        with open(root / "archive.tsv", "a") as stream:
            stream.write("999999\tDE\tEU\t42\n")
        with pytest.raises(ParseError, match=r"archive\.tsv: line \d+:"):
            load_bundle(root)

    def test_corrupted_connlog_line_names_file_and_line(self, root):
        with open(root / "connlog.tsv", "a") as stream:
            stream.write("!corrupt\n")
        with pytest.raises(ParseError, match=r"connlog\.tsv: line \d+:"):
            load_bundle(root)

    def test_wrapped_uptime_counter_rejected(self, root):
        with open(root / "uptime.tsv", "a") as stream:
            stream.write("999999\t1\t%.0f\n" % 2 ** 32)
        with pytest.raises(ParseError, match="32-bit wrap"):
            load_bundle(root)

    def test_malformed_kroot_state_names_source_and_index(self, root):
        states = json.loads((root / "kroot.json").read_text())
        del states[0]["cadence"]
        (root / "kroot.json").write_text(json.dumps(states))
        with pytest.raises(ParseError, match=r"kroot\.json: line 1:"):
            load_bundle(root)

    def test_bad_pfx2as_filename_rejected(self, root):
        (root / "pfx2as" / "notamonth.txt").write_text("10.0.0.0\t8\t1\n")
        with pytest.raises(DatasetError, match="unrecognized pfx2as"):
            load_bundle(root)

    def test_missing_pfx2as_month_surfaces_at_lookup(self, root):
        for path in (root / "pfx2as").glob("*.txt"):
            path.unlink()
        bundle = load_bundle(root)
        with pytest.raises(DatasetError, match="no pfx2as snapshot"):
            bundle.ip2as.snapshot_for(bundle.start)


class TestRepairLoad:
    def test_clean_bundle_repair_matches_strict(self, bundle_dir):
        from repro.util.ingest import IngestReport, ReadPolicy
        report = IngestReport()
        repaired = load_bundle(bundle_dir, policy=ReadPolicy.REPAIR,
                               report=report)
        strict = load_bundle(bundle_dir)
        assert report.clean
        assert repaired.connlog.entry_count() == strict.connlog.entry_count()
        assert repaired.archive.probe_ids() == strict.archive.probe_ids()
        assert repaired.ip2as.months() == strict.ip2as.months()
        assert not repaired.ip2as.fallback

    def test_missing_files_become_empty_datasets(self, world, tmp_path):
        from repro.util.ingest import IngestReport, ReadPolicy
        root = write_world(world, tmp_path / "b")
        (root / "connlog.tsv").unlink()
        report = IngestReport()
        bundle = load_bundle(root, policy=ReadPolicy.REPAIR, report=report)
        assert bundle.connlog.entry_count() == 0
        assert not report.clean
        assert any("connlog.tsv missing" in issue.message
                   for issue in report.issues)

    def test_meta_json_failures_stay_fatal_under_repair(
            self, world, tmp_path):
        from repro.util.ingest import ReadPolicy
        root = write_world(world, tmp_path / "b")
        (root / "meta.json").write_text("{not json")
        with pytest.raises(DatasetError):
            load_bundle(root, policy=ReadPolicy.REPAIR)


class TestAnalysisEquivalence:
    def test_pipeline_over_bundle_matches_direct(self, bundle_dir, world):
        direct = pipeline_for_world(world).run()
        loaded = pipeline_for_bundle(load_bundle(bundle_dir)).run()
        assert loaded.table2_rows() == direct.table2_rows()
        assert loaded.asn_by_probe == direct.asn_by_probe
        assert loaded.firmware_days == direct.firmware_days
        direct_stats = {pid: (s.network_outages, s.network_changes,
                              s.power_outages, s.power_changes)
                        for pid, s in direct.stats_by_probe.items()}
        loaded_stats = {pid: (s.network_outages, s.network_changes,
                              s.power_outages, s.power_changes)
                        for pid, s in loaded.stats_by_probe.items()}
        assert loaded_stats == direct_stats


class TestSimulateCli:
    def test_cli_writes_bundle(self, tmp_path, capsys):
        from repro.sim.cli import main
        assert main(["--out", str(tmp_path / "out"),
                     "--scale", "0.02", "--seed", "3"]) == 0
        assert "Wrote bundle" in capsys.readouterr().out
        bundle = load_bundle(tmp_path / "out")
        assert bundle.connlog.entry_count() > 0
