"""Tests for repro.sim.io (dataset bundle round-trips)."""

import json

import pytest

from repro.core.pipeline import pipeline_for_bundle, pipeline_for_world
from repro.errors import DatasetError, ParseError
from repro.experiments.scenarios import small_world
from repro.sim.io import (
    DatasetBundle,
    load_bundle,
    write_world,
)


@pytest.fixture(scope="module")
def world():
    return small_world(seed=17, days=25)


@pytest.fixture(scope="module")
def bundle_dir(world, tmp_path_factory):
    return write_world(world, tmp_path_factory.mktemp("bundle"))


class TestWrite:
    def test_expected_files_present(self, bundle_dir):
        for name in ("meta.json", "archive.tsv", "connlog.tsv",
                     "uptime.tsv", "kroot.json"):
            assert (bundle_dir / name).exists(), name
        assert list((bundle_dir / "pfx2as").glob("*.txt"))

    def test_meta_contents(self, bundle_dir, world):
        meta = json.loads((bundle_dir / "meta.json").read_text())
        assert meta["seed"] == world.config.seed
        assert "64496" in meta["as_names"]


class TestLoad:
    def test_roundtrip_preserves_datasets(self, bundle_dir, world):
        bundle = load_bundle(bundle_dir)
        assert isinstance(bundle, DatasetBundle)
        assert bundle.connlog.entry_count() == world.connlog.entry_count()
        assert bundle.archive.probe_ids() == world.archive.probe_ids()
        assert bundle.uptime.probe_ids() == world.uptime.probe_ids()
        assert bundle.kroot.probe_ids() == world.kroot.probe_ids()
        assert bundle.ip2as.months() == world.ip2as.months()

    def test_kroot_series_behaviour_preserved(self, bundle_dir, world):
        bundle = load_bundle(bundle_dir)
        for probe_id in world.kroot.probe_ids()[:5]:
            original = world.kroot.series(probe_id)
            loaded = bundle.kroot.series(probe_id)
            window = (original.observed_start,
                      original.observed_start + 4 * 3600)
            assert ([r.success for r in loaded.records(*window)]
                    == [r.success for r in original.records(*window)])

    def test_missing_bundle_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_bundle(tmp_path / "nonexistent")

    def test_bad_version_rejected(self, tmp_path, world):
        root = write_world(world, tmp_path / "b")
        meta = json.loads((root / "meta.json").read_text())
        meta["bundle_version"] = 99
        (root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DatasetError):
            load_bundle(root)

    def test_corrupt_kroot_rejected(self, tmp_path, world):
        root = write_world(world, tmp_path / "c")
        (root / "kroot.json").write_text('[{"probe_id": 1}]')
        with pytest.raises(ParseError):
            load_bundle(root)


class TestAnalysisEquivalence:
    def test_pipeline_over_bundle_matches_direct(self, bundle_dir, world):
        direct = pipeline_for_world(world).run()
        loaded = pipeline_for_bundle(load_bundle(bundle_dir)).run()
        assert loaded.table2_rows() == direct.table2_rows()
        assert loaded.asn_by_probe == direct.asn_by_probe
        assert loaded.firmware_days == direct.firmware_days
        direct_stats = {pid: (s.network_outages, s.network_changes,
                              s.power_outages, s.power_changes)
                        for pid, s in direct.stats_by_probe.items()}
        loaded_stats = {pid: (s.network_outages, s.network_changes,
                              s.power_outages, s.power_changes)
                        for pid, s in loaded.stats_by_probe.items()}
        assert loaded_stats == direct_stats


class TestSimulateCli:
    def test_cli_writes_bundle(self, tmp_path, capsys):
        from repro.sim.cli import main
        assert main(["--out", str(tmp_path / "out"),
                     "--scale", "0.02", "--seed", "3"]) == 0
        assert "Wrote bundle" in capsys.readouterr().out
        bundle = load_bundle(tmp_path / "out")
        assert bundle.connlog.entry_count() > 0
