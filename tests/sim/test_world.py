"""Tests for repro.sim.scenario and repro.sim.world (small worlds)."""

import pytest

from repro.errors import SimulationError
from repro.isp.pool import PoolPolicy
from repro.isp.profiles import IspProfile
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.net.ipv4 import TESTING_ADDRESS
from repro.sim.scenario import ScenarioConfig, paper_scenario
from repro.sim.world import ProbeRole, build_world
from repro.util import timeutil
from repro.util.timeutil import DAY, HOUR


def small_profiles():
    plan = AddressSpacePlan(num_prefixes=4, slash16_groups=2, slash8_groups=2)
    periodic = IspSpec(
        name="Periodic", asn=64496, country="DE",
        access=AccessTechnology.PPP, plan=plan,
        pool_policy=PoolPolicy(0.5, 0.5), period=DAY,
        periodic_fraction=1.0, skip_prob=0.0, offschedule_prob=0.0)
    stable = IspSpec(
        name="Stable", asn=64497, country="US",
        access=AccessTechnology.DHCP, plan=plan,
        pool_policy=PoolPolicy(0.5, 0.5),
        churn_rate_per_hour=0.01, dhcp_change_prob=0.01)
    return (IspProfile(periodic, 4), IspProfile(stable, 4))


def small_config(**overrides):
    kwargs = dict(
        profiles=small_profiles(),
        seed=7,
        start=timeutil.YEAR_2015_START,
        end=timeutil.YEAR_2015_START + 30 * DAY,
        static_probes=2,
        dual_stack_probes=2,
        ipv6_probes=1,
        tagged_probes=2,
        multihomed_probes=2,
        testing_only_probes=1,
        mover_probes=2,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestScenarioConfig:
    def test_counts(self):
        config = small_config()
        assert config.dynamic_probe_count == 8
        assert config.total_probe_count == 8 + 2 + 2 + 1 + 2 + 2 + 1 + 2

    @pytest.mark.parametrize("overrides", [
        dict(profiles=()),
        dict(end=timeutil.YEAR_2015_START),
        dict(static_probes=-1),
        dict(version_weights=(1.0, 2.0)),
        dict(fate_sharing_prob=1.5),
    ])
    def test_validation(self, overrides):
        with pytest.raises(SimulationError):
            small_config(**overrides)

    def test_paper_scenario_ratios(self):
        config = paper_scenario(scale=0.1)
        analyzable = config.dynamic_probe_count + config.mover_probes
        assert config.dual_stack_probes > config.dynamic_probe_count
        assert config.ipv6_probes < 0.15 * analyzable
        assert config.mover_probes > 0.2 * config.dynamic_probe_count

    def test_paper_scenario_rejects_bad_scale(self):
        with pytest.raises(SimulationError):
            paper_scenario(scale=0.0)


class TestBuildWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(small_config())

    def test_all_probes_present_everywhere(self, world):
        config = world.config
        assert len(world.archive) == config.total_probe_count
        assert len(world.truth) == config.total_probe_count
        for probe_id in world.archive.probe_ids():
            assert world.kroot.has_probe(probe_id)
            assert world.connlog.entries(probe_id)
            assert world.uptime.records(probe_id)

    def test_roles_counted(self, world):
        roles = [t.role for t in world.truth.values()]
        assert roles.count(ProbeRole.DYNAMIC) == 8
        assert roles.count(ProbeRole.STATIC) == 2
        assert roles.count(ProbeRole.DUAL_STACK) == 2
        assert roles.count(ProbeRole.IPV6_ONLY) == 1
        assert roles.count(ProbeRole.TAGGED) == 2
        assert roles.count(ProbeRole.MULTIHOMED) == 2
        assert roles.count(ProbeRole.TESTING) == 1
        assert roles.count(ProbeRole.MOVER) == 2

    def test_periodic_probes_change_addresses_daily(self, world):
        periodic_ids = [t.probe_id for t in world.truth.values()
                        if t.isp_names[0] == "Periodic"
                        and t.role is ProbeRole.DYNAMIC]
        for probe_id in periodic_ids:
            truth = world.truth[probe_id]
            assert truth.true_change_count >= 25  # ~daily over 30 days

    def test_static_probes_never_change(self, world):
        for truth in world.truth.values():
            if truth.role is ProbeRole.STATIC:
                assert truth.true_change_count == 0
                entries = world.connlog.entries(truth.probe_id)
                addresses = {e.address for e in entries}
                assert len(addresses) == 1

    def test_ip2as_resolves_probe_addresses(self, world):
        for truth in world.truth.values():
            if truth.role is not ProbeRole.DYNAMIC:
                continue
            for entry in world.connlog.entries(truth.probe_id):
                asn = world.ip2as.origin_asn(entry.address, entry.start)
                assert asn == truth.asns[0]

    def test_testing_probe_starts_at_ripe_address(self, world):
        testing_ids = [t.probe_id for t in world.truth.values()
                       if t.role is ProbeRole.TESTING]
        for probe_id in testing_ids:
            first = world.connlog.entries(probe_id)[0]
            assert first.address == TESTING_ADDRESS
            asn = world.ip2as.origin_asn(first.address, first.start)
            assert asn == 3333

    def test_mover_crosses_ases(self, world):
        for truth in world.truth.values():
            if truth.role is not ProbeRole.MOVER:
                continue
            assert len(truth.asns) == 2
            assert truth.asns[0] != truth.asns[1]
            entries = world.connlog.entries(truth.probe_id)
            observed = {world.ip2as.origin_asn(e.address, e.start)
                        for e in entries if not e.is_ipv6}
            assert observed == set(truth.asns)

    def test_ipv6_only_probe_has_no_v4_entries(self, world):
        for truth in world.truth.values():
            if truth.role is ProbeRole.IPV6_ONLY:
                entries = world.connlog.entries(truth.probe_id)
                assert all(e.is_ipv6 for e in entries)

    def test_dual_stack_mixes_families(self, world):
        for truth in world.truth.values():
            if truth.role is ProbeRole.DUAL_STACK:
                entries = world.connlog.entries(truth.probe_id)
                assert {e.is_ipv6 for e in entries} == {True, False}

    def test_deterministic_rebuild(self, world):
        rebuilt = build_world(small_config())
        probe = world.archive.probe_ids()[0]
        assert ([(e.start, e.end, str(e.address or e.ipv6_address))
                 for e in world.connlog.entries(probe)]
                == [(e.start, e.end, str(e.address or e.ipv6_address))
                    for e in rebuilt.connlog.entries(probe)])
