"""Tests for repro.sim.outages."""

import pytest

from repro.isp.pool import PoolPolicy
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.sim.outages import (
    MIN_OUTAGE_DURATION,
    MIN_SEPARATION,
    Interruption,
    InterruptionKind,
    generate_interruptions,
)
from repro.util.rng import substream
from repro.util.timeutil import YEAR_2015_END, YEAR_2015_START


def make_spec(**overrides):
    kwargs = dict(
        name="T", asn=64496, country="DE", access=AccessTechnology.PPP,
        plan=AddressSpacePlan(num_prefixes=2, slash16_groups=1),
        pool_policy=PoolPolicy(),
        power_outages_per_year=10.0, network_outages_per_year=20.0,
    )
    kwargs.update(overrides)
    return IspSpec(**kwargs)


class TestInterruption:
    def test_duration(self):
        event = Interruption(InterruptionKind.POWER, 10.0, 70.0)
        assert event.duration == 60.0

    def test_break_has_zero_duration(self):
        event = Interruption(InterruptionKind.BREAK, 10.0, 10.0)
        assert event.duration == 0.0

    def test_inverted_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            Interruption(InterruptionKind.POWER, 10.0, 5.0)


class TestGenerateInterruptions:
    def generate(self, seed=1, **spec_overrides):
        return generate_interruptions(
            substream(seed, "outages"), make_spec(**spec_overrides),
            YEAR_2015_START, YEAR_2015_END)

    def test_sorted_and_separated(self):
        events = self.generate()
        for left, right in zip(events, events[1:]):
            assert right.start >= left.end + MIN_SEPARATION

    def test_rates_roughly_respected(self):
        events = self.generate(seed=2)
        power = sum(1 for e in events if e.kind is InterruptionKind.POWER)
        network = sum(1 for e in events if e.kind is InterruptionKind.NETWORK)
        breaks = sum(1 for e in events if e.kind is InterruptionKind.BREAK)
        # Some events are dropped by the separation rule, so allow slack.
        assert 3 <= power <= 18
        assert 8 <= network <= 32
        assert 10 <= breaks <= 45

    def test_outages_have_min_duration(self):
        events = self.generate(seed=3)
        instant = (InterruptionKind.BREAK, InterruptionKind.PROBE_REBOOT)
        for event in events:
            if event.kind not in instant:
                assert event.duration >= MIN_OUTAGE_DURATION

    def test_all_within_window(self):
        events = self.generate(seed=4)
        assert all(YEAR_2015_START <= e.start and e.end <= YEAR_2015_END
                   for e in events)

    def test_deterministic(self):
        assert self.generate(seed=5) == self.generate(seed=5)
        assert self.generate(seed=5) != self.generate(seed=6)

    def test_zero_rates_yield_only_breaks(self):
        events = generate_interruptions(
            substream(1, "z"),
            make_spec(power_outages_per_year=0.0,
                      network_outages_per_year=0.0),
            YEAR_2015_START, YEAR_2015_END, break_rate_per_year=5.0,
            probe_reboot_rate_per_year=0.0)
        assert all(e.kind is InterruptionKind.BREAK for e in events)

    def test_probe_reboots_generated(self):
        events = generate_interruptions(
            substream(1, "z"),
            make_spec(power_outages_per_year=0.0,
                      network_outages_per_year=0.0),
            YEAR_2015_START, YEAR_2015_END, break_rate_per_year=0.0,
            probe_reboot_rate_per_year=20.0)
        assert events
        assert all(e.kind is InterruptionKind.PROBE_REBOOT for e in events)

    def test_zero_everything_is_empty(self):
        events = generate_interruptions(
            substream(1, "z"),
            make_spec(power_outages_per_year=0.0,
                      network_outages_per_year=0.0),
            YEAR_2015_START, YEAR_2015_END, break_rate_per_year=0.0,
            probe_reboot_rate_per_year=0.0)
        assert events == []
