"""Property tests on per-probe timeline outputs.

Whatever the outage history, ISP policy, probe version and confounder
flags, a simulated probe's traces must satisfy structural invariants the
analysis relies on: ordered non-overlapping connections, positive gaps,
monotone uptime between reboots, and power-off/network-down disjointness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas.types import ProbeVersion
from repro.isp.policy import build_plant
from repro.isp.pool import AddressPool, PoolPolicy
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.net.ipv4 import IPv4Prefix
from repro.sim.outages import generate_interruptions
from repro.sim.timeline import ProbeSimulator, Segment
from repro.util.rng import substream
from repro.util.timeutil import DAY, HOUR

WINDOW = 45 * DAY


@st.composite
def probe_configs(draw):
    seed = draw(st.integers(0, 10_000))
    access = draw(st.sampled_from(list(AccessTechnology)))
    period = None
    if access is AccessTechnology.PPP and draw(st.booleans()):
        period = draw(st.sampled_from([12, 24, 168])) * HOUR
    version = draw(st.sampled_from(list(ProbeVersion)))
    fate = draw(st.booleans())
    family = draw(st.sampled_from(["v4", "dual"]))
    power_rate = draw(st.floats(0.0, 60.0))
    network_rate = draw(st.floats(0.0, 120.0))
    return seed, access, period, version, fate, family, power_rate, \
        network_rate


def run_probe(config):
    (seed, access, period, version, fate, family, power_rate,
     network_rate) = config
    spec = IspSpec(
        name="T", asn=64496, country="DE", access=access,
        plan=AddressSpacePlan(num_prefixes=2, slash16_groups=1),
        pool_policy=PoolPolicy(),
        period=period,
        power_outages_per_year=power_rate,
        network_outages_per_year=network_rate,
    )
    pool = AddressPool([IPv4Prefix.parse("192.0.2.0/24"),
                        IPv4Prefix.parse("198.51.100.0/24")],
                       spec.pool_policy)
    plant = build_plant(spec, pool, seed)
    interruptions = generate_interruptions(
        substream(seed, "events"), spec, 0.0, WINDOW)
    simulator = ProbeSimulator(
        1, substream(seed, "probe"), [interruptions],
        [Segment(plant, "cpe", 0.0, WINDOW)],
        version=version, fate_sharing=fate, frag_reboot_prob=0.3,
        firmware_campaigns=(10 * DAY,),
        family_mode=family,
        ipv6_address="2001:db8::1" if family == "dual" else None)
    return simulator.run()


class TestTimelineInvariants:
    @given(probe_configs())
    @settings(max_examples=40, deadline=None)
    def test_entries_ordered_and_disjoint(self, config):
        output = run_probe(config)
        assert output.entries, "probe produced no connections"
        for entry in output.entries:
            assert 0.0 <= entry.start < entry.end <= WINDOW
        for left, right in zip(output.entries, output.entries[1:]):
            assert right.start > left.end  # positive inter-connection gap

    @given(probe_configs())
    @settings(max_examples=40, deadline=None)
    def test_uptime_records_consistent(self, config):
        output = run_probe(config)
        records = output.uptime_records
        assert records
        stamps = [r.timestamp for r in records]
        assert stamps == sorted(stamps)
        for record in records:
            assert record.uptime >= 0.0
        # The counter can never grow faster than wall clock (it only ever
        # pauses at zero across reboots).
        for left, right in zip(records, records[1:]):
            elapsed = right.timestamp - left.timestamp
            assert right.uptime <= left.uptime + elapsed + 1.0

    @given(probe_configs())
    @settings(max_examples=40, deadline=None)
    def test_power_and_network_intervals_disjoint(self, config):
        output = run_probe(config)
        for interval in output.power_off:
            assert not output.network_down.contains(interval.start)
        for interval in output.network_down:
            assert not output.power_off.contains(interval.start)

    @given(probe_configs())
    @settings(max_examples=40, deadline=None)
    def test_true_changes_reflected_in_entries(self, config):
        output = run_probe(config)
        v4_entries = [e for e in output.entries if not e.is_ipv6]
        observed = sum(
            1 for a, b in zip(v4_entries, v4_entries[1:])
            if a.address != b.address)
        # Dual-stack probes hide some changes behind IPv6 connections, and
        # the last change can fall off the window end — observed never
        # exceeds the truth.
        assert observed <= len(output.true_changes)
