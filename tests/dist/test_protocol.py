"""Frame-level tests for the dist wire protocol."""

import pickle

import pytest

from repro.dist import protocol
from repro.errors import WireProtocolError

pytestmark = pytest.mark.dist

MESSAGES = [
    protocol.Hello(worker_id="w0", protocol_version=1, code_version="c",
                   fingerprint="f", min_connected=3600.0),
    protocol.Lease(lease_id=7, stage="filter", shard_index=2, attempt=1,
                   items=(10, 11, 12), deadline_s=300.0, cache_key="k"),
    protocol.Lease.request(),
    protocol.Result(lease_id=7, stage="filter", shard_index=2, attempt=1,
                    envelope=None, error="boom"),
    protocol.Heartbeat(worker_id="w0", lease_id=7),
    protocol.Drain(done=False, reason="between stages",
                   retry_after_s=0.05),
]


def _round_trip(message):
    frame = protocol.pack(message)
    code, length, digest = protocol.unpack_header(
        frame[:protocol.HEADER.size])
    payload = frame[protocol.HEADER.size:]
    assert length == len(payload)
    return protocol.unpack_payload(code, payload, digest)


@pytest.mark.parametrize("message", MESSAGES,
                         ids=[type(m).__name__ + str(i)
                              for i, m in enumerate(MESSAGES)])
def test_round_trip(message):
    assert _round_trip(message) == message


def test_lease_request_marker():
    assert protocol.Lease.request().is_request
    assert not MESSAGES[1].is_request


def test_pack_rejects_foreign_objects():
    with pytest.raises(WireProtocolError):
        protocol.pack({"not": "a message"})


def test_garbled_payload_fails_integrity_digest():
    frame = bytearray(protocol.pack(MESSAGES[1]))
    frame[-1] ^= 0xFF
    code, _, digest = protocol.unpack_header(
        bytes(frame[:protocol.HEADER.size]))
    with pytest.raises(WireProtocolError, match="integrity digest"):
        protocol.unpack_payload(code, bytes(frame[protocol.HEADER.size:]),
                                digest)


def test_bad_magic_rejected():
    frame = bytearray(protocol.pack(MESSAGES[0]))
    frame[0:4] = b"HTTP"
    with pytest.raises(WireProtocolError, match="magic"):
        protocol.unpack_header(bytes(frame[:protocol.HEADER.size]))


def test_version_skew_rejected_at_the_header():
    frame = bytearray(protocol.pack(MESSAGES[0]))
    frame[4] = protocol.PROTOCOL_VERSION + 1
    with pytest.raises(WireProtocolError, match="version"):
        protocol.unpack_header(bytes(frame[:protocol.HEADER.size]))


def test_unknown_message_type_rejected():
    frame = bytearray(protocol.pack(MESSAGES[0]))
    frame[5] = 99
    with pytest.raises(WireProtocolError, match="unknown message type"):
        protocol.unpack_header(bytes(frame[:protocol.HEADER.size]))


def test_oversized_length_rejected_before_buffering():
    header = protocol.HEADER.pack(
        protocol.MAGIC, protocol.PROTOCOL_VERSION, protocol.MSG_HELLO,
        protocol.MAX_FRAME_BYTES + 1, b"\x00" * 32)
    with pytest.raises(WireProtocolError, match="ceiling"):
        protocol.unpack_header(header)


def test_short_header_rejected():
    with pytest.raises(WireProtocolError, match="short frame header"):
        protocol.unpack_header(b"RPRD")


def test_type_code_must_match_payload_class():
    """A HELLO payload inside a frame typed LEASE is a protocol error:
    the digest passes (the bytes are intact) but the class check fires."""
    import hashlib
    payload = pickle.dumps(MESSAGES[0],
                           protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    with pytest.raises(WireProtocolError, match="carried a"):
        protocol.unpack_payload(protocol.MSG_LEASE, payload, digest)
