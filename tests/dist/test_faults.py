"""Network-faulted distributed runs: sabotage the transport, keep the
digest.

Each test runs the full loopback pipeline with a deterministic
:class:`~repro.faults.network.NetworkFaultPlan` on the worker channels
and asserts the two-part contract: the ``results_digest`` still equals
the serial reference, and :func:`~repro.faults.network.
reconcile_network` accounts the run exactly (injected faults logged,
disruptions attributed, ``analyzed + quarantined == total``).

Deadlines and socket timeouts are small here on purpose: a dropped
message heals via lease expiry or a receive timeout, and the defaults
(minutes) would turn each recovery into a stall.
"""

import pytest

from repro.dist.coordinator import DistConfig
from repro.faults.network import NetworkFaultPlan, reconcile_network

pytestmark = [pytest.mark.dist, pytest.mark.faults, pytest.mark.slow]


def _faulted(dist_run, plan, workers=2, lease_deadline=5.0,
             socket_timeout=2.0):
    config = DistConfig(workers=workers, lease_deadline_s=lease_deadline,
                        backoff_base_s=0.01)
    run, runner = dist_run(
        worker_count=workers, config=config,
        fault_plans={"w%d" % i: plan for i in range(workers)},
        socket_timeout_s=socket_timeout)
    report = reconcile_network(
        plan, [summary.injected for summary in run.summaries.values()],
        runner.report.resilience)
    return run, runner, report


def test_garbled_messages_cost_retries_never_the_digest(dist_run,
                                                        serial_digest):
    plan = NetworkFaultPlan(seed=13, msg_garble=0.05)
    run, runner, report = _faulted(dist_run, plan)
    assert run.worker_errors == {}
    assert run.digest == serial_digest
    assert not runner.report.degraded
    assert report.accounted
    assert report.injected.get("msg-garble", 0) > 0


def test_disconnects_reassign_leases_and_keep_the_digest(dist_run,
                                                         serial_digest):
    plan = NetworkFaultPlan(seed=23, conn_disconnect=0.04)
    run, runner, report = _faulted(dist_run, plan)
    assert run.digest == serial_digest
    assert report.accounted
    assert report.injected.get("conn-disconnect", 0) > 0
    reconnects = sum(summary.reconnects
                     for summary in run.summaries.values())
    assert reconnects > 0


def test_mixed_fault_soup_reconciles_exactly(dist_run, serial_digest):
    plan = NetworkFaultPlan(seed=3, msg_drop=0.02, msg_garble=0.03,
                            msg_delay=0.05, conn_disconnect=0.02,
                            delay_s=0.01)
    run, runner, report = _faulted(dist_run, plan)
    assert run.digest == serial_digest
    assert report.accounted
    assert sum(report.injected.values()) > 0
    # The channel logs and the worker summaries are the same account.
    logged = {}
    for summary in run.summaries.values():
        for kind, count in summary.injected.items():
            logged[kind] = logged.get(kind, 0) + count
    assert report.injected == logged
    assert report.total_items > 0
    assert report.analyzed_items == report.total_items


def test_faulted_run_report_renders(dist_run):
    plan = NetworkFaultPlan(seed=13, msg_garble=0.05)
    _, _, report = _faulted(dist_run, plan)
    text = report.render()
    assert "network faults (seed 13)" in text
    assert "UNRECONCILED" not in text
