"""Lease-board tests: the pure shard state machine under adversarial
delivery.

The board is single-threaded and clock-injected, so hypothesis can
drive arbitrary interleavings of out-of-order, duplicate, and
stale-retry envelopes — plus worker deaths at any point — and assert
the merge discipline directly: every shard resolves exactly once, the
payload list equals the serial kernel outputs (which is what makes the
distributed ``results_digest`` bit-identical), and the accounting obeys
``analyzed + quarantined == total``.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.board import (
    CAUSE_DISCONNECT,
    SUBMIT_CORRUPT,
    SUBMIT_DUPLICATE,
    SUBMIT_LATE,
    SUBMIT_RESOLVED,
    LeaseBoard,
)
from repro.runtime.supervisor import CAUSE_HANG, SupervisionPolicy
from repro.runtime.workers import ShardResult
from repro.util import fingerprint as fp

pytestmark = pytest.mark.dist


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def payload_of(index):
    return {index: index * index}


def envelope(index, attempt=0, corrupt=False):
    blob = pickle.dumps(payload_of(index),
                        protocol=pickle.HIGHEST_PROTOCOL)
    seal = fp.hash_bytes(blob)
    if corrupt:
        blob = blob[:-1] + bytes([blob[-1] ^ 0xFF])
    return ShardResult(shard_index=index, attempt=attempt,
                       payload_pickle=blob, seal=seal)


def make_board(count=4, max_retries=2, deadline=100.0, backoff=0.0,
               clock=None):
    shards = [[index] for index in range(count)]
    policy = SupervisionPolicy(max_retries=max_retries,
                               shard_deadline_s=deadline,
                               backoff_base_s=backoff)
    return LeaseBoard("filter", shards, policy,
                      clock=clock or FakeClock())


def drain_leases(board, worker_id="w0"):
    records = []
    while (record := board.lease(worker_id)) is not None:
        records.append(record)
    return records


def test_happy_path_resolves_in_shard_order():
    board = make_board(4)
    records = drain_leases(board)
    assert [record.shard_index for record in records] == [0, 1, 2, 3]
    for record in records:
        verdict = board.submit(record.lease_id,
                               envelope(record.shard_index))
        assert verdict == SUBMIT_RESOLVED
    assert board.done
    outcome = board.finish(lambda item: item)
    assert outcome.payloads == [payload_of(index) for index in range(4)]
    row = outcome.resilience
    assert row.analyzed_items == row.total_items == 4
    assert row.quarantined_items == 0 and not row.degraded


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_any_interleaving_of_envelopes_merges_identically(data):
    """Out-of-order, duplicate, and stale-retry deliveries — in any
    order — resolve every shard exactly once with the serial payloads."""
    board = make_board(5, max_retries=10)
    records = drain_leases(board)
    deliveries = [(record.lease_id, envelope(record.shard_index))
                  for record in records]
    # Duplicates of some shards, plus stale retries under dead lease ids.
    extras = data.draw(st.lists(
        st.tuples(st.integers(0, 4), st.booleans()), max_size=8))
    for index, use_bogus_lease in extras:
        lease_id = -5 if use_bogus_lease else deliveries[index][0]
        deliveries.append((lease_id, envelope(index, attempt=3)))
    for lease_id, env in data.draw(st.permutations(deliveries)):
        verdict = board.submit(lease_id, env)
        assert verdict in (SUBMIT_RESOLVED, SUBMIT_LATE,
                           SUBMIT_DUPLICATE)
    assert board.done
    outcome = board.finish(lambda item: item)
    assert outcome.payloads == [payload_of(index) for index in range(5)]
    row = outcome.resilience
    assert row.analyzed_items + row.quarantined_items == row.total_items
    assert row.quarantined_items == 0


@settings(max_examples=50, deadline=None)
@given(dead_after=st.integers(0, 4),
       victim=st.sampled_from(["w0", "w1"]))
def test_worker_death_mid_lease_never_loses_or_double_counts(
        dead_after, victim):
    board = make_board(5, max_retries=10)
    granted = {"w0": [], "w1": []}
    worker = "w0"
    while (record := board.lease(worker)) is not None:
        granted[worker].append(record)
        worker = "w1" if worker == "w0" else "w0"
    # The victim resolves a few of its leases, then dies mid-flight.
    survived = granted[victim][:dead_after]
    for record in survived:
        board.submit(record.lease_id, envelope(record.shard_index))
    board.disconnect(victim)
    # The survivor serves its own leases plus the victim's reassigned
    # shards until the stage drains.
    survivor = "w1" if victim == "w0" else "w0"
    for record in granted[survivor]:
        board.submit(record.lease_id, envelope(record.shard_index))
    while not board.done:
        record = board.lease(survivor)
        assert record is not None, "unresolved shard never regrantable"
        board.submit(record.lease_id, envelope(record.shard_index))
    outcome = board.finish(lambda item: item)
    assert outcome.payloads == [payload_of(index) for index in range(5)]
    row = outcome.resilience
    assert row.analyzed_items == row.total_items
    lost = len(granted[victim]) - len(survived)
    assert row.reassignments == lost
    assert sum(1 for failure in row.failures
               if failure.cause == CAUSE_DISCONNECT) == lost


def test_expired_lease_is_reassigned_and_charged_as_hang():
    clock = FakeClock()
    board = make_board(1, deadline=10.0, clock=clock)
    first = board.lease("w0")
    clock.now = 11.0
    expired = board.expire()
    assert [record.lease_id for record in expired] == [first.lease_id]
    second = board.lease("w1")
    assert second.shard_index == 0 and second.attempt == 1
    board.submit(second.lease_id, envelope(0, attempt=1))
    assert board.done and board.reassignments == 1
    assert board.failures[0].cause == CAUSE_HANG


def test_late_envelope_from_expired_lease_still_resolves():
    clock = FakeClock()
    board = make_board(1, deadline=10.0, clock=clock)
    record = board.lease("w0")
    clock.now = 11.0
    board.expire()
    assert board.submit(record.lease_id, envelope(0)) == SUBMIT_LATE
    assert board.done and board.late == 1
    # The replacement's envelope is now a duplicate, not a double merge.
    assert board.submit(-1, envelope(0, attempt=1)) == SUBMIT_DUPLICATE
    assert board.duplicates == 1


def test_backoff_gates_regrant_until_clock_advances():
    clock = FakeClock()
    board = make_board(1, backoff=5.0, clock=clock)
    record = board.lease("w0")
    board.fail_lease(record.lease_id, "kernel exploded")
    assert board.lease("w0") is None  # still inside the backoff window
    clock.now = 5.1
    retry = board.lease("w0")
    assert retry is not None and retry.attempt == 1


def test_corrupt_envelope_is_charged_and_retried():
    board = make_board(1, max_retries=2)
    record = board.lease("w0")
    verdict = board.submit(record.lease_id, envelope(0, corrupt=True))
    assert verdict == SUBMIT_CORRUPT
    retry = board.lease("w0")
    assert retry is not None and retry.attempt == 1
    board.submit(retry.lease_id, envelope(0, attempt=1))
    assert board.done


def test_exhausted_retries_quarantine_the_shard():
    board = make_board(2, max_retries=1)
    while not board.done:
        record = board.lease("w0")
        if record is None:
            break
        if record.shard_index == 0:
            board.fail_lease(record.lease_id, "always fails")
        else:
            board.submit(record.lease_id, envelope(1))
    assert board.done
    outcome = board.finish(lambda item: item)
    row = outcome.resilience
    assert row.abandoned == (0,)
    assert row.quarantined_probes == (0,)
    assert row.analyzed_items + row.quarantined_items == row.total_items
    assert row.degraded
    assert outcome.payloads[0] is None
    assert outcome.payloads[1] == payload_of(1)


def test_envelope_for_wrong_shard_resolves_itself_and_requeues_lease():
    board = make_board(2)
    first = board.lease("w0")
    second = board.lease("w1")
    assert (first.shard_index, second.shard_index) == (0, 1)
    # w0 answers its shard-0 lease with shard 1's envelope.
    verdict = board.submit(first.lease_id, envelope(1))
    assert verdict == SUBMIT_LATE  # resolved shard 1, not the lease's
    # Shard 0 must not starve: it is regrantable once its stale lease
    # is released, and shard 1's own result is now a duplicate.
    assert board.submit(second.lease_id, envelope(1)) == SUBMIT_DUPLICATE
    requeued = board.lease("w1")
    assert requeued is not None and requeued.shard_index == 0
    board.submit(requeued.lease_id, envelope(0))
    assert board.done


def test_result_without_envelope_charges_the_lease():
    board = make_board(1)
    record = board.lease("w0")
    assert board.submit(record.lease_id, None) == SUBMIT_CORRUPT
    retry = board.lease("w0")
    assert retry is not None and retry.attempt == 1
