"""``repro-dist`` CLI tests: spec parsing plus a loopback smoke run."""

import pytest

from repro.dist.cli import main, parse_inject_net_spec
from repro.faults.network import NetworkFaultPlan

pytestmark = pytest.mark.dist


def test_parse_inject_net_spec_full():
    plan = parse_inject_net_spec(
        "seed=7,msg_drop=0.1,msg_garble=0.2,msg_delay=0.3,"
        "conn_disconnect=0.05,delay_s=0.01")
    assert plan == NetworkFaultPlan(seed=7, msg_drop=0.1, msg_garble=0.2,
                                    msg_delay=0.3, conn_disconnect=0.05,
                                    delay_s=0.01)


def test_parse_inject_net_spec_rejects_unknown_and_bare_fields():
    with pytest.raises(ValueError, match="unknown"):
        parse_inject_net_spec("seed=1,worker_crash=0.5")
    with pytest.raises(ValueError, match="key=value"):
        parse_inject_net_spec("persistent")


@pytest.mark.slow
def test_coordinator_loopback_smoke(bundle_dir, serial_digest, tmp_path,
                                    capsys):
    trace = tmp_path / "trace.json"
    code = main(["coordinator", "--data", str(bundle_dir),
                 "--loopback", "2", "--trace", str(trace)])
    out = capsys.readouterr().out
    assert code == 0
    digest_lines = [line for line in out.splitlines()
                    if line.startswith("digest")]
    assert len(digest_lines) == 1
    from repro.util import fingerprint as fp
    assert digest_lines[0].split()[-1] == fp.short(serial_digest)
    assert trace.exists()


@pytest.mark.slow
def test_coordinator_loopback_with_network_faults(bundle_dir,
                                                  serial_digest,
                                                  capsys):
    code = main(["coordinator", "--data", str(bundle_dir),
                 "--loopback", "2", "--lease-deadline", "5",
                 "--backoff-base", "0.01",
                 "--inject-net", "seed=13,msg_garble=0.05"])
    out = capsys.readouterr().out
    assert code == 0
    from repro.util import fingerprint as fp
    assert ("digest       %s" % fp.short(serial_digest)) in out
    assert "network faults (seed 13)" in out
    assert "UNRECONCILED" not in out


def test_inject_net_requires_loopback(capsys):
    code = main(["coordinator", "--inject-net", "seed=1,msg_drop=0.1"])
    assert code == 2
    assert "--loopback" in capsys.readouterr().err


def test_worker_rejects_malformed_connect(tmp_path, capsys):
    code = main(["worker", "--connect", "nonsense", "--data",
                 str(tmp_path)])
    assert code == 2
    assert "HOST:PORT" in capsys.readouterr().err
