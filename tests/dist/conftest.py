"""Shared fixtures for the dist suite: one small world plus dist helpers."""

from __future__ import annotations

import pytest

from repro.dist.coordinator import DistConfig, dist_runner_for_bundle
from repro.dist.loopback import run_loopback
from repro.experiments.scenarios import small_world
from repro.runtime.digest import results_digest
from repro.runtime.executor import RuntimeConfig, runner_for_bundle
from repro.runtime.workers import WorkerContext
from repro.sim.io import load_bundle, write_world


@pytest.fixture(scope="session")
def world():
    """A compact simulated world (built once per session)."""
    return small_world(seed=11, days=40)


@pytest.fixture(scope="session")
def bundle_dir(world, tmp_path_factory):
    """The world written to disk as a dataset bundle."""
    return write_world(world, tmp_path_factory.mktemp("bundle"))


@pytest.fixture(scope="session")
def bundle(bundle_dir):
    """The bundle loaded back, fingerprint stamped."""
    return load_bundle(bundle_dir)


@pytest.fixture(scope="session")
def serial_digest(bundle):
    """The jobs=1 reference digest every distributed run must match."""
    return results_digest(runner_for_bundle(bundle,
                                            RuntimeConfig(jobs=1)).run())


def context_for(bundle, runner) -> WorkerContext:
    """The worker context a loopback run installs for ``bundle``."""
    return WorkerContext(
        connlog=bundle.connlog, archive=bundle.archive,
        ip2as=bundle.ip2as, kroot=bundle.kroot, uptime=bundle.uptime,
        min_connected=runner._min_connected)


@pytest.fixture
def dist_run(bundle):
    """Run the pipeline through loopback sockets; returns (run, runner)."""

    def run(worker_count: int = 2, config: DistConfig | None = None,
            fault_plans: dict | None = None, **kwargs):
        if config is None:
            config = DistConfig(workers=worker_count)
        runner = dist_runner_for_bundle(bundle, config)
        result = run_loopback(runner, context_for(bundle, runner),
                              worker_count=worker_count,
                              fault_plans=fault_plans, **kwargs)
        return result, runner

    return run
