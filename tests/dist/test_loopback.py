"""End-to-end loopback runs: the bit-identity and resilience gates.

Every test here drives the complete stage graph through real sockets
(coordinator plus worker threads on 127.0.0.1) and holds the distributed
``results_digest`` to the ``jobs=1`` reference — the tentpole contract.
"""

import pickle

import pytest

from repro.dist import protocol
from repro.dist.coordinator import DistConfig, dist_runner_for_bundle
from repro.dist.worker import DistWorker
from repro.errors import DistError
from repro.runtime import workers
from repro.runtime.cache import ArtifactCache, code_version
from repro.runtime.stages import topological_order
from repro.util import fingerprint as fp

pytestmark = [pytest.mark.dist, pytest.mark.slow]


def test_loopback_two_workers_matches_serial_digest(dist_run,
                                                    serial_digest):
    run, runner = dist_run(worker_count=2)
    assert run.worker_errors == {}
    assert run.digest == serial_digest
    assert not runner.report.degraded
    served = sum(summary.leases_served
                 for summary in run.summaries.values())
    assert served > 0
    # Every fan-out stage went over the wire and left an account.
    assert {row.stage for row in runner.report.resilience} \
        == {"filter", "spans", "reboots", "gaps"}
    for row in runner.report.resilience:
        assert row.analyzed_items == row.total_items


def test_worker_count_does_not_change_the_digest(dist_run,
                                                 serial_digest):
    run, _ = dist_run(worker_count=3)
    assert run.worker_errors == {}
    assert run.digest == serial_digest


def test_kernel_failures_quarantine_and_degrade(dist_run, serial_digest,
                                                monkeypatch):
    """A stage kernel that always raises exhausts the retry budget:
    its shards are quarantined, the run completes DEGRADED, and the
    accounting stays exact — no hang, no crash, no silent loss."""
    original = workers.SHARD_TASKS["reboots"]

    def exploding(items):
        raise RuntimeError("injected kernel failure")

    monkeypatch.setitem(workers.SHARD_TASKS, "reboots", exploding)
    config = DistConfig(workers=2, max_retries=1, backoff_base_s=0.0)
    run, runner = dist_run(worker_count=2, config=config)
    monkeypatch.setitem(workers.SHARD_TASKS, "reboots", original)
    assert run.worker_errors == {}
    assert runner.report.degraded
    reboots = [row for row in runner.report.resilience
               if row.stage == "reboots"][0]
    assert reboots.quarantined_items == reboots.total_items
    assert reboots.analyzed_items + reboots.quarantined_items \
        == reboots.total_items
    assert len(reboots.abandoned) == reboots.shards
    # Degradation is honest: the digest must NOT match the clean run.
    assert run.digest != serial_digest


def _delete_stage_artifacts(cache_dir, runner):
    """Evict the whole-stage artifacts, keeping shard checkpoints."""
    cache = ArtifactCache(cache_dir)
    params = fp.combine("min_connected", repr(runner._min_connected))
    removed = 0
    for spec in topological_order():
        key = ArtifactCache.key(runner.fingerprint, spec.name,
                                code_version(), params)
        path = cache._path(key)
        if path.exists():
            path.unlink()
            removed += 1
    assert removed, "no stage artifacts found to delete"


def test_workers_short_circuit_from_shared_cache(tmp_path, bundle,
                                                 dist_run,
                                                 serial_digest):
    """Second run with stage artifacts evicted but shard checkpoints
    kept: leases carry cache keys and workers answer from the shared
    store without recomputing (``cache_hit``)."""
    cache_dir = tmp_path / "cache"
    config = DistConfig(workers=2, cache_dir=cache_dir)
    cold, cold_runner = dist_run(worker_count=2, config=config)
    assert cold.digest == serial_digest
    _delete_stage_artifacts(cache_dir, cold_runner)
    warm, warm_runner = dist_run(worker_count=2, config=config)
    assert warm.digest == serial_digest
    hits = sum(summary.cache_hits
               for summary in warm.summaries.values())
    served = sum(summary.leases_served
                 for summary in warm.summaries.values())
    assert hits == served > 0, "every lease should be a cache hit"


def test_resume_preloads_checkpoints_before_serving(tmp_path, dist_run,
                                                    serial_digest):
    """``--resume``: the coordinator resolves every checkpointed shard
    before granting a single lease, interoperating with the checkpoint
    keys the pool supervisor writes."""
    cache_dir = tmp_path / "cache"
    cold_config = DistConfig(workers=2, cache_dir=cache_dir)
    cold, cold_runner = dist_run(worker_count=2, config=cold_config)
    _delete_stage_artifacts(cache_dir, cold_runner)
    resume_config = DistConfig(workers=2, cache_dir=cache_dir,
                               resume=True)
    warm, warm_runner = dist_run(worker_count=2, config=resume_config)
    assert warm.digest == serial_digest
    for row in warm_runner.report.resilience:
        assert row.checkpoints_loaded == row.shards
    served = sum(summary.leases_served
                 for summary in warm.summaries.values())
    assert served == 0, "resumed shards must never be re-leased"


def test_hello_rejects_a_worker_with_the_wrong_bundle(bundle):
    config = DistConfig(workers=1)
    runner = dist_runner_for_bundle(bundle, config)
    server = runner._server
    try:
        worker = DistWorker(host=server.host, port=server.port,
                            worker_id="intruder",
                            fingerprint="not-the-same-bundle")
        with pytest.raises(DistError, match="rejected"):
            worker.run()
    finally:
        server.finish()
        server.close()


def test_worker_cache_short_circuit_unit(tmp_path):
    """A verified cached envelope answers the lease without compute;
    a corrupt one falls through (and here surfaces the kernel error,
    since no worker context is installed)."""
    cache = ArtifactCache(tmp_path / "cache")
    blob = pickle.dumps({1: "payload"},
                        protocol=pickle.HIGHEST_PROTOCOL)
    good = workers.ShardResult(shard_index=2, attempt=0,
                               payload_pickle=blob,
                               seal=fp.hash_bytes(blob))
    cache.store("good-key", good)
    corrupt = workers.ShardResult(shard_index=2, attempt=0,
                                  payload_pickle=blob + b"x",
                                  seal=fp.hash_bytes(blob))
    cache.store("bad-key", corrupt)
    worker = DistWorker(host="", port=0, worker_id="w0", cache=cache)
    lease = protocol.Lease(lease_id=1, stage="filter", shard_index=2,
                           attempt=0, items=(1,), cache_key="good-key")
    result = worker._compute(lease)
    assert result.cache_hit
    assert result.envelope.open_payload() == {1: "payload"}
    bad_lease = protocol.Lease(lease_id=2, stage="filter", shard_index=2,
                               attempt=0, items=(1,),
                               cache_key="bad-key")
    fallthrough = worker._compute(bad_lease)
    assert not fallthrough.cache_hit
    assert "worker context" in fallthrough.error
