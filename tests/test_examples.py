"""Smoke tests: every example script runs end to end.

Fast examples run as-is; the two that build the paper scenario are run at
a tiny scale through their argv interface.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Daily-DSL" in out

    def test_outage_forensics(self, capsys):
        run_example("outage_forensics.py")
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "P(change|network outage)" in out

    def test_atlas_scrape(self, capsys):
        run_example("atlas_scrape.py")
        out = capsys.readouterr().out
        assert "agree exactly" in out

    @pytest.mark.slow
    def test_blacklist_ttl(self, capsys):
        run_example("blacklist_ttl.py", ["0.05"])
        out = capsys.readouterr().out
        assert "suggested TTL" in out

    @pytest.mark.slow
    def test_isp_policy_survey(self, capsys):
        run_example("isp_policy_survey.py", ["0.05"])
        out = capsys.readouterr().out
        assert "inferred" in out
