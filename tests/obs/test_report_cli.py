"""``repro-obs``: report rendering sections and CLI exit codes."""

from __future__ import annotations

from repro.obs.cli import main
from repro.obs.report import render_report
from repro.obs.spans import Span
from repro.obs.trace import trace_payload, write_trace


def _payload() -> dict:
    spans = [
        Span("filter", "stage", 0.0, 2.0, 1,
             (("cached", False), ("sharded", True))),
        Span("stats", "stage", 2.0, 2.5, 1,
             (("cached", True), ("sharded", False))),
        Span("shard:filter", "shard", 0.0, 1.0, 2,
             (("shard", 0), ("stage", "filter"))),
        Span("shard:filter", "shard", 0.0, 3.0, 3,
             (("shard", 1), ("stage", "filter"))),
    ]
    snapshot = {
        "counters": {
            "cache.hits": 6, "cache.misses": 2, "cache.stores": 2,
            "cache.evictions": 1, "cache.heals": 1,
            "cache.bytes_stored": 512,
            "ingest.parsed.connlog": 90, "ingest.repaired.connlog": 5,
            "ingest.quarantined.connlog": 5,
            "faults.injected.connlog-garbled": 3,
        },
        "gauges": {"runtime.jobs.effective": 4, "runtime.cpu_count": 1,
                   "runtime.oversubscribed": 1,
                   "cache.bytes_on_disk": 512},
    }
    return trace_payload(spans, snapshot,
                         meta={"start_method": "fork",
                               "results_digest": "d" * 16})


def test_report_renders_every_section():
    text = render_report(_payload())
    assert "== run" in text
    assert "jobs 4 of 1 cpu" in text and "OVERSUBSCRIBED" in text
    assert "start method fork" in text
    assert "== stages" in text and "sharded" in text and "cached" in text
    assert "== shard skew" in text and "1.50x" in text
    assert "== cache" in text and "75.0% hit rate" in text
    assert "corrupt-entry heals 1" in text
    assert "== ingest" in text and "connlog" in text and "5.00%" in text
    assert "== faults injected" in text and "connlog-garbled" in text


def test_report_of_empty_payload_degrades_gracefully():
    text = render_report(trace_payload([], {"counters": {}, "gauges": {}}))
    assert "(no stage spans recorded)" in text


def test_cli_report_and_validate(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(__import__("json").dumps(_payload()))
    assert main(["validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "valid" in out and "4 events" in out

    assert main(["report", str(path)]) == 0
    assert "== stages" in capsys.readouterr().out


def test_cli_rejects_missing_and_invalid_files(tmp_path, capsys):
    assert main(["report", str(tmp_path / "absent.json")]) == 1
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "wrong"}')
    assert main(["validate", str(bad)]) == 1
    assert "unknown trace schema" in capsys.readouterr().err


def test_cli_consumes_writer_output(tmp_path, capsys):
    path = tmp_path / "written.json"
    write_trace(path, spans=[Span("run", "run", 0.0, 1.0, 1)],
                snapshot={"counters": {}, "gauges": {}})
    assert main(["report", str(path)]) == 0
