"""Shared hygiene: every obs test starts from empty process-local state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Drain the span collector and metrics registry around each test."""
    obs.drain_spans()
    obs.metrics().drain()
    yield
    obs.drain_spans()
    obs.metrics().drain()
