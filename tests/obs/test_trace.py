"""Chrome trace export: event shape, rebasing, roundtrip, validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import Span, span
from repro.obs.trace import (
    TRACE_SCHEMA,
    load_trace,
    trace_events,
    trace_payload,
    validate_trace,
    write_trace,
)


def _span(name: str, start: float, end: float, **attrs) -> Span:
    return Span(name=name, category="stage", start=start, end=end,
                pid=1234, attrs=tuple(sorted(attrs.items())))


def test_no_spans_no_events():
    assert trace_events([]) == []


def test_events_are_rebased_to_earliest_start():
    events = trace_events([_span("late", 100.5, 101.0),
                           _span("early", 100.0, 100.2)])
    by_name = {event["name"]: event for event in events}
    assert by_name["early"]["ts"] == 0.0
    assert by_name["late"]["ts"] == pytest.approx(5e5)  # 0.5 s in µs
    assert by_name["late"]["dur"] == pytest.approx(5e5)
    for event in events:
        assert event["ph"] == "X"
        assert event["pid"] == 1234 and event["tid"] == 1234


def test_attrs_become_event_args():
    (event,) = trace_events([_span("filter", 0.0, 1.0, cached=False,
                                   sharded=True)])
    assert event["args"] == {"cached": False, "sharded": True}


def test_payload_shape_and_roundtrip(tmp_path):
    with span("real"):
        pass
    path = tmp_path / "trace.json"
    written = write_trace(path, meta={"jobs": 2})
    assert written["schema"] == TRACE_SCHEMA
    assert written["displayTimeUnit"] == "ms"
    loaded = load_trace(path)
    assert loaded == json.loads(path.read_text())
    assert loaded["meta"]["jobs"] == 2
    assert any(event["name"] == "real" for event in loaded["traceEvents"])


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ObservabilityError, match="not valid JSON"):
        load_trace(path)


def _valid_payload() -> dict:
    return trace_payload([_span("s", 0.0, 1.0)],
                         {"counters": {"c": 1}, "gauges": {"g": 2.0}},
                         meta={"jobs": 1})


def test_validate_accepts_the_writer_output():
    validate_trace(_valid_payload())  # must not raise


@pytest.mark.parametrize("mutate, message", [
    (lambda p: p.update(schema="bogus"), "unknown trace schema"),
    (lambda p: p.update(traceEvents={}), "traceEvents must be a list"),
    (lambda p: p["traceEvents"][0].pop("dur"), "missing 'dur'"),
    (lambda p: p["traceEvents"][0].update(ph="B"), "must be 'X'"),
    (lambda p: p["traceEvents"][0].update(ts=-1), "negative ts/dur"),
    (lambda p: p["traceEvents"][0].update(name=7), "name has type int"),
    (lambda p: p.update(metrics=[]), "metrics must be an object"),
    (lambda p: p["metrics"]["counters"].update(c="x"), "must be numeric"),
    (lambda p: p["metrics"]["gauges"].update(g=True), "must be numeric"),
    (lambda p: p.update(meta=[]), "meta must be an object"),
])
def test_validate_rejects_schema_violations(mutate, message):
    payload = _valid_payload()
    mutate(payload)
    with pytest.raises(ObservabilityError, match=message):
        validate_trace(payload)


def test_validate_rejects_non_object_payload():
    with pytest.raises(ObservabilityError, match="JSON object"):
        validate_trace([1, 2, 3])
