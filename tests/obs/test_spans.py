"""Span recording, handles, shipping, and fork-safety of the collector."""

from __future__ import annotations

import os

from repro.obs import spans as spans_mod
from repro.obs.spans import (
    Span,
    absorb_spans,
    collector,
    current_spans,
    drain_spans,
    span,
)


def test_span_records_name_category_and_attrs():
    with span("stage_changes", category="stage", probe_count=7):
        pass
    (recorded,) = current_spans()
    assert recorded.name == "stage_changes"
    assert recorded.category == "stage"
    assert recorded.attr("probe_count") == 7
    assert recorded.attr("missing", "fallback") == "fallback"
    assert recorded.pid == os.getpid()
    assert recorded.seconds >= 0


def test_nested_spans_record_inner_first():
    with span("outer"):
        with span("inner"):
            pass
    names = [recorded.name for recorded in current_spans()]
    assert names == ["inner", "outer"]


def test_handle_set_merges_with_call_site_attrs():
    with span("filter", cached=False) as handle:
        handle.set(sharded=True, items=3)
    (recorded,) = current_spans()
    assert recorded.attr("cached") is False
    assert recorded.attr("sharded") is True
    assert recorded.attr("items") == 3


def test_span_is_sealed_even_on_exception():
    try:
        with span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (recorded,) = current_spans()
    assert recorded.name == "doomed"


def test_drain_returns_everything_and_clears():
    with span("a"):
        pass
    with span("b"):
        pass
    drained = drain_spans()
    assert [recorded.name for recorded in drained] == ["a", "b"]
    assert current_spans() == ()


def test_absorb_appends_shipped_spans():
    with span("local"):
        pass
    shipped = Span(name="remote", category="shard", start=0.0, end=1.0,
                   pid=12345)
    absorb_spans([shipped.with_attrs(shard=2)])
    names = [recorded.name for recorded in current_spans()]
    assert names == ["local", "remote"]
    assert current_spans()[-1].attr("shard") == 2


def test_with_attrs_returns_tagged_copy():
    original = Span(name="s", category="shard", start=0.0, end=0.5,
                    pid=1, attrs=(("items", 4),))
    tagged = original.with_attrs(shard=0)
    assert tagged.attr("shard") == 0 and tagged.attr("items") == 4
    assert original.attr("shard") is None  # frozen original untouched


def test_pid_change_resets_collector(monkeypatch):
    with span("parent-side"):
        pass
    parent_collector = collector()
    assert parent_collector.spans()
    # Simulate what a forked child observes: same module globals, new pid.
    real_pid = os.getpid()
    monkeypatch.setattr(spans_mod.os, "getpid", lambda: real_pid + 1)
    child_collector = collector()
    assert child_collector is not parent_collector
    assert child_collector.spans() == ()  # inherited spans are discarded
