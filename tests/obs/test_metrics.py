"""Metrics registry semantics and the accounting-object lifting helpers."""

from __future__ import annotations

import os

import importlib

from repro.obs.metrics import (
    MetricsRegistry,
    count,
    gauge,
    metrics,
    metrics_snapshot,
    record_cache,
    record_ingest,
)
from repro.runtime.cache import CacheStats
from repro.util.ingest import IngestReport

# The facade re-exports the metrics() accessor under the submodule's own
# name, so reach the module itself through importlib.
metrics_mod = importlib.import_module("repro.obs.metrics")


def test_counters_accumulate_and_gauges_overwrite():
    registry = MetricsRegistry()
    registry.count("cache.hits")
    registry.count("cache.hits", 4)
    registry.gauge("jobs", 2)
    registry.gauge("jobs", 8)
    assert registry.counters() == {"cache.hits": 5}
    assert registry.gauges() == {"jobs": 8.0}


def test_snapshot_is_sorted_and_detached():
    registry = MetricsRegistry()
    registry.count("b")
    registry.count("a")
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]
    snapshot["counters"]["a"] = 999
    assert registry.counters()["a"] == 1


def test_drain_clears_and_absorb_merges():
    worker = MetricsRegistry()
    worker.count("tasks", 3)
    worker.gauge("depth", 5)
    shipped = worker.drain()
    assert worker.counters() == {} and worker.gauges() == {}

    parent = MetricsRegistry()
    parent.count("tasks", 1)
    parent.absorb(shipped)
    parent.absorb({"counters": {"tasks": 2}})
    assert parent.counters()["tasks"] == 6  # 1 + 3 + 2: counters add
    assert parent.gauges()["depth"] == 5.0  # gauges last-write-wins


def test_module_helpers_hit_the_process_registry():
    count("x", 2)
    gauge("y", 7)
    snapshot = metrics_snapshot()
    assert snapshot["counters"]["x"] == 2
    assert snapshot["gauges"]["y"] == 7.0


def test_pid_change_resets_registry(monkeypatch):
    count("inherited", 9)
    parent_registry = metrics()
    real_pid = os.getpid()
    monkeypatch.setattr(metrics_mod.os, "getpid", lambda: real_pid + 1)
    child_registry = metrics()
    assert child_registry is not parent_registry
    assert child_registry.counters() == {}


def test_record_ingest_lifts_per_dataset_rows():
    report = IngestReport()
    report.parsed("connlog", 100)
    report.repaired("connlog", "connlog.tsv", 3, "re-sorted")
    report.quarantined("uptime", "uptime.tsv", 9, "garbage value")
    record_ingest(report)
    counters = metrics_snapshot()["counters"]
    assert counters["ingest.parsed.connlog"] == 100
    assert counters["ingest.repaired.connlog"] == 1
    assert counters["ingest.quarantined.connlog"] == 0
    assert counters["ingest.quarantined.uptime"] == 1


def test_record_cache_lifts_stats_and_disk_gauge():
    stats = CacheStats(hits=5, misses=2, stores=2, evicted=1, healed=1,
                      bytes_stored=4096)
    record_cache(stats, bytes_on_disk=2048)
    snapshot = metrics_snapshot()
    assert snapshot["counters"]["cache.hits"] == 5
    assert snapshot["counters"]["cache.misses"] == 2
    assert snapshot["counters"]["cache.evictions"] == 1
    assert snapshot["counters"]["cache.heals"] == 1
    assert snapshot["counters"]["cache.bytes_stored"] == 4096
    assert snapshot["gauges"]["cache.bytes_on_disk"] == 2048.0
