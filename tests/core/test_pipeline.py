"""Integration tests: the pipeline recovers simulated ground truth."""

import io

import pytest

from repro.atlas.connlog import ConnectionLog
from repro.atlas.sosuptime import UptimeDataset
from repro.core.filtering import ProbeCategory
from repro.core.pipeline import AnalysisPipeline, pipeline_for_world
from repro.core.timefraction import dominant_duration
from repro.experiments.scenarios import small_world
from repro.sim.world import ProbeRole
from repro.util.timeutil import DAY


@pytest.fixture(scope="module")
def world():
    return small_world(seed=13)


@pytest.fixture(scope="module")
def results(world):
    return pipeline_for_world(world).run()


class TestFilteringRecoversRoles:
    def probes_with_role(self, world, role):
        return {t.probe_id for t in world.truth.values() if t.role is role}

    def test_ipv6_probes_recovered(self, world, results):
        expected = self.probes_with_role(world, ProbeRole.IPV6_ONLY)
        found = set(results.filter_report.probes_in(ProbeCategory.IPV6_ONLY))
        assert found == expected

    def test_dual_stack_probes_recovered(self, world, results):
        expected = self.probes_with_role(world, ProbeRole.DUAL_STACK)
        found = set(results.filter_report.probes_in(
            ProbeCategory.DUAL_STACK))
        assert found == expected

    def test_tagged_probes_recovered(self, world, results):
        expected = self.probes_with_role(world, ProbeRole.TAGGED)
        found = set(results.filter_report.probes_in(ProbeCategory.TAGGED))
        assert found == expected

    def test_testing_probes_recovered(self, world, results):
        expected = self.probes_with_role(world, ProbeRole.TESTING)
        found = set(results.filter_report.probes_in(
            ProbeCategory.TESTING_ONLY))
        assert found == expected

    def test_movers_land_in_multi_as(self, world, results):
        movers = self.probes_with_role(world, ProbeRole.MOVER)
        multi_as = set(results.filter_report.multi_as_probes())
        # Movers always change AS; a few may also be filtered earlier
        # (e.g. short segments), so check containment of the active ones.
        classified = movers & set(results.filter_report.analyzable_geo())
        assert classified <= multi_as

    def test_dynamic_probes_not_filtered_as_multihomed(self, world, results):
        dynamic = self.probes_with_role(world, ProbeRole.DYNAMIC)
        multihomed = set(results.filter_report.probes_in(
            ProbeCategory.MULTIHOMED))
        assert not (dynamic & multihomed)

    def test_no_probe_unaccounted(self, world, results):
        report = results.filter_report
        classified = sum(report.count(category)
                         for category in ProbeCategory)
        assert classified == len(world.truth)


class TestChangeRecovery:
    def test_change_counts_match_truth(self, world, results):
        # For single-AS dynamic probes the pipeline must find the changes
        # the simulator produced.  A change whose reconnect falls past the
        # end of the observation window leaves no connection to observe,
        # so ground truth may exceed the observation by that final change.
        for pid, changes in results.changes_by_probe.items():
            truth = world.truth[pid]
            if truth.role is not ProbeRole.DYNAMIC:
                continue
            assert (truth.true_change_count - 1
                    <= len(changes)
                    <= truth.true_change_count), pid

    def test_periodic_isp_period_recovered(self, world, results):
        durations = []
        for pid, probe_durations in results.as_level_durations().items():
            if results.asn_by_probe[pid] == 64496:  # Daily-DSL
                durations.extend(probe_durations)
        assert durations
        found = dominant_duration(durations)
        assert found is not None
        assert found[0] == DAY
        assert found[1] > 0.6

    def test_table5_reports_daily_isp_only(self, results):
        rows = results.table5_rows(min_probes=3, min_periodic=2)
        asns = {row.asn for row in rows}
        assert 64496 in asns
        assert 64498 not in asns  # the stable DHCP ISP


class TestSerializationRoundTrip:
    def test_pipeline_runs_on_reparsed_datasets(self, world, results):
        # Write the connection log and uptime dataset to their text
        # formats, parse them back, and verify the analysis agrees.
        conn_buffer = io.StringIO()
        world.connlog.write(conn_buffer)
        reparsed_log = ConnectionLog.read(io.StringIO(conn_buffer.getvalue()))

        up_buffer = io.StringIO()
        world.uptime.write(up_buffer)
        reparsed_uptime = UptimeDataset.read(
            io.StringIO(up_buffer.getvalue()))

        pipeline = AnalysisPipeline(
            reparsed_log, world.archive, world.kroot, reparsed_uptime,
            world.ip2as, min_connected=4 * DAY)
        reparsed = pipeline.run()
        assert (reparsed.filter_report.table2_rows()
                == results.filter_report.table2_rows())
        assert reparsed.asn_by_probe == results.asn_by_probe
