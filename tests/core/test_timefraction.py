"""Tests for repro.core.timefraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timefraction import (
    bin_duration,
    binned_time,
    dominant_duration,
    pooled_durations,
    time_fraction_cdf,
    total_time_fraction,
)
from repro.util.timeutil import DAY, HOUR


class TestBinDuration:
    def test_snaps_to_nearest_hour(self):
        assert bin_duration(23.67 * HOUR) == 24 * HOUR
        assert bin_duration(24.4 * HOUR) == 24 * HOUR
        assert bin_duration(24.6 * HOUR) == 25 * HOUR

    def test_custom_bin(self):
        assert bin_duration(100.0, bin_width=30.0) == 90.0

    def test_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            bin_duration(1.0, bin_width=0.0)


class TestBinnedTime:
    def test_values_sum_to_total(self):
        durations = [23.7 * HOUR, 24.2 * HOUR, 5 * HOUR]
        accumulated = binned_time(durations)
        assert sum(accumulated.values()) == pytest.approx(sum(durations))
        assert set(accumulated) == {24 * HOUR, 5 * HOUR}

    def test_empty(self):
        assert binned_time([]) == {}


class TestTotalTimeFraction:
    def test_paper_table1_example(self):
        # Table 1: three ~24h durations among 14.2, 0.7, 7.2 hour ones;
        # the 24h mode holds roughly three quarters of total time.
        durations = [14.2 * HOUR, 0.7 * HOUR, 7.2 * HOUR,
                     23.6 * HOUR, 23.6 * HOUR, 23.6 * HOUR]
        f = total_time_fraction(durations, 24 * HOUR)
        assert 0.7 < f < 0.8

    def test_zero_when_empty(self):
        assert total_time_fraction([], DAY) == 0.0

    def test_exact_mode(self):
        assert total_time_fraction([DAY, DAY], DAY) == pytest.approx(1.0)

    @given(st.lists(st.floats(60.0, 100 * 3600.0), min_size=1, max_size=30))
    def test_fractions_sum_to_one(self, durations):
        total = sum(durations)
        accumulated = binned_time(durations)
        fractions = [time / total for time in accumulated.values()]
        assert sum(fractions) == pytest.approx(1.0)

    @given(st.lists(st.floats(60.0, 100 * 3600.0), min_size=1, max_size=20),
           st.integers(2, 5))
    def test_replication_invariance(self, durations, k):
        # Repeating the same durations k times leaves every fraction fixed.
        f1 = total_time_fraction(durations, DAY)
        fk = total_time_fraction(list(durations) * k, DAY)
        assert f1 == pytest.approx(fk)


class TestTimeFractionCdf:
    def test_monotone_and_ends_at_one(self):
        points = time_fraction_cdf([23.7 * HOUR, 5 * HOUR, 167.8 * HOUR])
        fractions = [p.fraction for p in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_mode_is_visible_step(self):
        durations = [23.7 * HOUR] * 10 + [2 * HOUR] * 5
        points = time_fraction_cdf(durations)
        step = {p.value: p.fraction for p in points}
        # The 24h step carries ~96% of the mass.
        assert step[24 * HOUR] - step[2 * HOUR] > 0.9

    def test_empty(self):
        assert time_fraction_cdf([]) == []


class TestDominantDuration:
    def test_picks_largest_time_share(self):
        durations = [23.7 * HOUR] * 5 + [1 * HOUR] * 20
        result = dominant_duration(durations)
        assert result is not None
        d, f = result
        assert d == 24 * HOUR
        assert f > 0.8

    def test_none_when_empty(self):
        assert dominant_duration([]) is None


class TestPooled:
    def test_concatenates(self):
        assert pooled_durations([[1.0, 2.0], [], [3.0]]) == [1.0, 2.0, 3.0]
