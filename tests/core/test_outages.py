"""Tests for repro.core.outages."""

from repro.atlas.types import KRootPingRecord
from repro.core.outages import NetworkOutage, detect_network_outages


def rec(t, success, lts, probe=16893):
    return KRootPingRecord(probe, t, 3, success, lts)


class TestDetectNetworkOutages:
    def test_paper_table3_example(self):
        # Mirrors Table 3: loss from 09:05:48 to 09:21:40 with rising LTS.
        records = [
            rec(100, 3, 86),
            rec(340, 0, 151),
            rec(580, 0, 388),
            rec(820, 0, 619),
            rec(1060, 0, 872),
            rec(1300, 0, 1103),
            rec(1540, 3, 1342),
            rec(1780, 3, 146),
        ]
        outages = detect_network_outages(records)
        assert outages == [NetworkOutage(16893, 340, 1300)]
        assert outages[0].duration == 960

    def test_no_outage_when_all_healthy(self):
        records = [rec(100 + i * 240, 3, 120) for i in range(10)]
        assert detect_network_outages(records) == []

    def test_single_lost_round_with_low_lts_ignored(self):
        # One lost round with fresh LTS is packet loss, not an outage.
        records = [rec(100, 3, 120), rec(340, 0, 130), rec(580, 3, 120)]
        assert detect_network_outages(records) == []

    def test_single_lost_round_with_high_lts_detected(self):
        records = [rec(100, 3, 120), rec(340, 0, 400), rec(580, 3, 120)]
        outages = detect_network_outages(records)
        assert len(outages) == 1
        assert outages[0].start == outages[0].end == 340

    def test_flat_lts_run_rejected(self):
        # All pings lost but LTS not growing: probe still syncs, so the
        # controller path is fine — not a network outage.
        records = [rec(100, 0, 120), rec(340, 0, 120), rec(580, 0, 120)]
        assert detect_network_outages(records) == []

    def test_two_separate_outages(self):
        records = [
            rec(100, 3, 120),
            rec(340, 0, 200), rec(580, 0, 440),
            rec(820, 3, 120),
            rec(1060, 0, 200), rec(1300, 0, 440),
            rec(1540, 3, 120),
        ]
        outages = detect_network_outages(records)
        assert len(outages) == 2
        assert outages[0].start == 340
        assert outages[1].start == 1060

    def test_run_at_end_of_records(self):
        records = [rec(100, 3, 120), rec(340, 0, 200), rec(580, 0, 440)]
        outages = detect_network_outages(records)
        assert len(outages) == 1
        assert outages[0].end == 580

    def test_empty(self):
        assert detect_network_outages([]) == []


class TestOverlaps:
    def test_overlap_predicate(self):
        outage = NetworkOutage(1, 100.0, 200.0)
        assert outage.overlaps(150.0, 300.0)
        assert outage.overlaps(200.0, 300.0)  # touching counts
        assert outage.overlaps(0.0, 100.0)
        assert not outage.overlaps(201.0, 300.0)
        assert not outage.overlaps(0.0, 99.0)
