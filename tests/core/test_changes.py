"""Tests for repro.core.changes."""

from repro.atlas.types import ConnectionLogEntry
from repro.core.changes import (
    extract_changes,
    extract_spans,
    known_durations,
    strip_testing_entry,
)
from repro.net.ipv4 import TESTING_ADDRESS, IPv4Address

A = IPv4Address.parse("192.0.2.1")
B = IPv4Address.parse("192.0.2.2")
C = IPv4Address.parse("192.0.2.3")


def v4(start, end, addr, probe=206):
    return ConnectionLogEntry(probe, start, end, addr)


def v6(start, end, probe=206):
    return ConnectionLogEntry(probe, start, end, None,
                              ipv6_address="2001:db8::1")


class TestExtractSpans:
    def test_empty(self):
        assert extract_spans([]) == []

    def test_single_entry_unknown_boundaries(self):
        spans = extract_spans([v4(0, 100, A)])
        assert len(spans) == 1
        span = spans[0]
        assert not span.complete_start
        assert not span.complete_end
        assert not span.has_known_duration

    def test_consecutive_same_address_merge(self):
        spans = extract_spans([v4(0, 100, A), v4(150, 300, A)])
        assert len(spans) == 1
        assert spans[0].start == 0
        assert spans[0].end == 300

    def test_change_bounds_inner_span(self):
        spans = extract_spans([v4(0, 100, A), v4(150, 300, B),
                               v4(350, 500, C)])
        assert len(spans) == 3
        inner = spans[1]
        assert inner.address == B
        assert inner.has_known_duration
        assert inner.duration == 300 - 150
        assert not spans[0].complete_start
        assert spans[0].complete_end
        assert spans[2].complete_start
        assert not spans[2].complete_end

    def test_paper_table1_durations(self):
        # Table 1's second entry: 03:22:16 -> 17:34:11 is 14.2 hours.
        from repro.util import timeutil
        entries = [
            v4(timeutil.epoch(2014, 12, 31, 3, 21, 34),
               timeutil.epoch(2015, 1, 1, 2, 57, 37), A),
            v4(timeutil.epoch(2015, 1, 1, 3, 22, 16),
               timeutil.epoch(2015, 1, 1, 17, 34, 11), B),
            v4(timeutil.epoch(2015, 1, 1, 18, 0, 54),
               timeutil.epoch(2015, 1, 1, 18, 42, 31), C),
        ]
        spans = extract_spans(entries)
        assert round(spans[1].duration / 3600, 1) == 14.2

    def test_v6_breaks_boundaries(self):
        spans = extract_spans([v4(0, 100, A), v6(150, 200), v4(250, 400, B)])
        assert len(spans) == 2
        assert not spans[0].complete_end
        assert not spans[1].complete_start

    def test_v6_only_yields_no_spans(self):
        assert extract_spans([v6(0, 100), v6(150, 200)]) == []


class TestExtractChanges:
    def test_no_change(self):
        assert extract_changes([v4(0, 100, A), v4(150, 300, A)]) == []

    def test_change_records_gap(self):
        changes = extract_changes([v4(0, 100, A), v4(150, 300, B)])
        assert len(changes) == 1
        change = changes[0]
        assert change.old_address == A
        assert change.new_address == B
        assert change.gap_start == 100
        assert change.gap_end == 150
        assert change.time == 150

    def test_v6_hides_change(self):
        changes = extract_changes([v4(0, 100, A), v6(150, 200),
                                   v4(250, 400, B)])
        assert changes == []

    def test_multiple_changes(self):
        changes = extract_changes([v4(0, 1, A), v4(2, 3, B), v4(4, 5, A)])
        assert [(c.old_address, c.new_address) for c in changes] == [
            (A, B), (B, A)]


class TestKnownDurations:
    def test_only_complete_spans(self):
        spans = extract_spans([v4(0, 100, A), v4(150, 300, B),
                               v4(350, 500, C)])
        assert known_durations(spans) == [150.0]


class TestStripTestingEntry:
    def test_removes_leading_testing_entry(self):
        entries = [v4(0, 10, TESTING_ADDRESS), v4(20, 100, A)]
        remaining, removed = strip_testing_entry(entries, TESTING_ADDRESS)
        assert removed
        assert len(remaining) == 1
        assert remaining[0].address == A

    def test_non_testing_first_kept(self):
        entries = [v4(0, 10, A), v4(20, 100, TESTING_ADDRESS)]
        remaining, removed = strip_testing_entry(entries, TESTING_ADDRESS)
        assert not removed
        assert len(remaining) == 2

    def test_empty(self):
        remaining, removed = strip_testing_entry([], TESTING_ADDRESS)
        assert remaining == [] and not removed
