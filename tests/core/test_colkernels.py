"""Differential tests: vectorized columnar kernels vs the record oracle.

Every hot-stage kernel in :mod:`repro.core.colkernels` is pinned
bit-identical to its legacy record-path twin (``--legacy-kernels``) over
a seeded simulated world — same verdicts in the same dict order, same
spans, reboots and gap events.  A randomized property pins the flattened
pfx2as stab table (what the kernels batch ``searchsorted`` over) to the
trie's longest-prefix lookup, address by address.
"""

from __future__ import annotations

import random
from bisect import bisect_right

import pytest

from repro.core import pipeline
from repro.experiments.scenarios import small_world
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.pfx2as import UNROUTED, AsMapping, Pfx2AsSnapshot
from repro.util import colpack, timeutil

pytestmark = pytest.mark.skipif(not colpack.HAVE_NUMPY,
                                reason="columnar kernels require numpy")

if colpack.HAVE_NUMPY:
    from repro.atlas.columnar import ColumnarConnlog, ColumnarUptime

MIN_CONNECTED = 4 * timeutil.DAY


@pytest.fixture(scope="module")
def world():
    return small_world(seed=23, days=40)


@pytest.fixture(scope="module")
def col(world):
    return ColumnarConnlog.from_connlog(world.connlog)


@pytest.fixture(scope="module")
def legacy_report(world):
    return pipeline.stage_filter(world.connlog, world.archive, world.ip2as,
                                 min_connected=MIN_CONNECTED)


@pytest.fixture(scope="module")
def columnar_report(world, col):
    return pipeline.stage_filter_col(col, world.connlog, world.archive,
                                     world.ip2as,
                                     min_connected=MIN_CONNECTED)


class TestFilterDifferential:
    def test_same_probes_in_same_order(self, legacy_report, columnar_report):
        assert list(columnar_report.verdicts) == list(legacy_report.verdicts)
        assert columnar_report.total == legacy_report.total

    def test_every_verdict_field_identical(self, legacy_report,
                                           columnar_report):
        matched = 0
        for pid, legacy in legacy_report.verdicts.items():
            got = columnar_report.verdicts[pid]
            assert got.category is legacy.category, pid
            assert got.entries == legacy.entries, pid
            assert got.changes == legacy.changes, pid
            assert got.within_as_changes == legacy.within_as_changes, pid
            assert got.multi_as == legacy.multi_as, pid
            assert got.asn == legacy.asn, pid
            matched += 1
        assert matched == legacy_report.total

    def test_all_categories_exercised(self, legacy_report):
        # The differential only means something if the seeded world hits
        # the interesting classification branches.
        seen = {verdict.category.name
                for verdict in legacy_report.verdicts.values()}
        assert "ANALYZABLE" in seen
        assert "NEVER_CHANGED" in seen

    def test_slim_form_restores_entries_exactly(self, world, col,
                                                legacy_report):
        from repro.core.colkernels import classify_probes
        from repro.core.filtering import report_from_verdicts, restore_entries
        slim = report_from_verdicts(classify_probes(
            col, world.connlog, world.archive, world.ip2as, MIN_CONNECTED,
            with_entries=False))
        slim.entries_stripped = True
        restore_entries(slim, world.connlog)
        for pid, legacy in legacy_report.verdicts.items():
            assert slim.verdicts[pid].entries == legacy.entries, pid


class TestStageDifferentials:
    def test_spans_identical(self, world, col, legacy_report,
                             columnar_report):
        legacy = pipeline.stage_spans(legacy_report)
        columnar = pipeline.stage_spans_col(col, world.connlog,
                                            columnar_report)
        assert columnar == legacy
        assert [list(columnar[0]), list(columnar[1])] == \
               [list(legacy[0]), list(legacy[1])]

    def test_reboots_identical(self, world):
        legacy = pipeline.stage_reboots(world.uptime)
        columnar = pipeline.stage_reboots_col(
            ColumnarUptime.from_uptime(world.uptime))
        assert columnar == legacy

    def test_gaps_identical(self, world, col, legacy_report,
                            columnar_report):
        *_, legacy_filtered = pipeline.stage_reboots(world.uptime)
        legacy = pipeline.stage_gaps(legacy_report, world.kroot,
                                     legacy_filtered)
        columnar = pipeline.stage_gaps_col(col, world.kroot,
                                           columnar_report, legacy_filtered)
        assert columnar == legacy
        assert list(columnar) == list(legacy)


class TestWindowEdgeChange:
    """Regression: a change timed by an entry starting at/after the
    observation window's end (a session segment crossing the year edge,
    first seen at paper scale 8) must classify — identically — in both
    kernels instead of raising ``DatasetError: no pfx2as snapshot``."""

    def test_both_kernels_resolve_boundary_month_lookup(self):
        from repro.atlas.archive import ProbeArchive
        from repro.atlas.connlog import ConnectionLog
        from repro.atlas.types import ConnectionLogEntry
        from repro.net.bgpgen import AddressSpaceAllocator, AddressSpacePlan

        allocator = AddressSpaceAllocator(seed=41)
        plan = AddressSpacePlan(num_prefixes=1, slash16_groups=1)
        prefix = allocator.allocate(64499, plan)[0]
        ip2as = allocator.build_dataset(timeutil.YEAR_2015_START,
                                        timeutil.YEAR_2015_END)
        base = prefix.first_address().value
        end = timeutil.YEAR_2015_END
        connlog = ConnectionLog([
            ConnectionLogEntry(1, end - 30 * timeutil.DAY, end - timeutil.DAY,
                               IPv4Address(base + 1)),
            ConnectionLogEntry(1, end + 60.0, end + 3600.0,
                               IPv4Address(base + 2)),
        ])
        legacy = pipeline.stage_filter(connlog, ProbeArchive(), ip2as,
                                       min_connected=timeutil.DAY)
        columnar = pipeline.stage_filter_col(
            ColumnarConnlog.from_connlog(connlog), connlog, ProbeArchive(),
            ip2as, min_connected=timeutil.DAY)
        verdict = legacy.verdicts[1]
        assert verdict.category.name == "ANALYZABLE"
        assert len(verdict.changes) == 1
        assert verdict.changes[0].time >= end  # really past the edge
        assert verdict.asn == 64499
        got = columnar.verdicts[1]
        assert got.category is verdict.category
        assert got.changes == verdict.changes
        assert got.within_as_changes == verdict.within_as_changes
        assert got.asn == verdict.asn


def random_snapshot(rng: random.Random, prefixes: int) -> Pfx2AsSnapshot:
    snapshot = Pfx2AsSnapshot()
    for _ in range(prefixes):
        length = rng.randint(4, 28)
        network = rng.getrandbits(32) >> (32 - length) << (32 - length)
        snapshot.add(AsMapping(IPv4Prefix(network, length),
                               rng.randint(1, 70000)))
    return snapshot


class TestStabTable:
    """The flattened stab table is exactly the trie, address by address."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_tries_agree_with_bisect_lookup(self, seed):
        rng = random.Random(seed)
        snapshot = random_snapshot(rng, prefixes=rng.randint(1, 120))
        bounds, asns = snapshot.stab_table()
        assert bounds[0] == 0
        assert bounds == sorted(bounds)
        probes = [rng.getrandbits(32) for _ in range(600)]
        probes += [b for b in bounds[:50]]          # segment edges
        probes += [b - 1 for b in bounds[:50] if b]  # just before edges
        for value in probes:
            expected = snapshot.origin_asn(IPv4Address(value))
            got = asns[bisect_right(bounds, value) - 1]
            assert got == (UNROUTED if expected is None else expected), value

    def test_arrays_mirror_table_and_invalidate_on_add(self):
        rng = random.Random(99)
        snapshot = random_snapshot(rng, prefixes=30)
        bounds_arr, asns_arr = snapshot.stab_arrays()
        bounds, asns = snapshot.stab_table()
        assert bounds_arr.tolist() == bounds
        assert asns_arr.tolist() == asns
        assert snapshot.stab_arrays() is snapshot.stab_arrays()  # memoized

        snapshot.add(AsMapping(IPv4Prefix(0, 8), 64512))
        fresh_bounds, fresh_asns = snapshot.stab_arrays()
        assert fresh_asns[0].item() == 64512
        fresh_table = snapshot.stab_table()
        assert fresh_bounds.tolist() == fresh_table[0]
        assert fresh_asns.tolist() == fresh_table[1]
        assert snapshot.origin_asn(IPv4Address(1)) == 64512
