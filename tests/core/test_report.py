"""Tests for repro.core.report renderers."""

from repro.core.conditional import OutageRenumberingRow
from repro.core.geography import GroupDurations
from repro.core.outage_buckets import DurationBucket
from repro.core.periodicity import PeriodicityRow
from repro.core.prefixes import PrefixChangeRow
from repro.core.report import (
    render_cdf_series,
    render_figure6,
    render_figure9,
    render_group_durations,
    render_hour_histogram,
    render_probability_cdfs,
    render_table2,
    render_table5,
    render_table6,
    render_table7,
)
from repro.util.stats import empirical_cdf
from repro.util.timeutil import DAY, HOUR


class TestTableRenderers:
    def test_table2(self):
        text = render_table2([("Total Probes", 10), ("Never changed", 3)])
        assert "Total Probes" in text
        assert text.startswith("Table 2")

    def test_table5(self):
        row = PeriodicityRow("Orange", 3215, "FR", 168 * HOUR, 122, 111,
                             0.77, 0.14, 0.98, 0.99)
        text = render_table5([row])
        assert "Orange" in text
        assert "168" in text
        assert "77%" in text

    def test_table5_all_rows_dash(self):
        row = PeriodicityRow("All", None, "", 24 * HOUR, 100, 50,
                             0.5, 0.25, 0.9, 0.95)
        text = render_table5([], all_rows=[row])
        assert "All" in text
        assert "-" in text

    def test_table6(self):
        row = OutageRenumberingRow("Orange", 3215, "FR", 84,
                                   0.79, 0.54, 0.77, 0.50)
        text = render_table6([row])
        assert "P(ac|nw)>0.8" in text
        assert "79%" in text

    def test_table7(self):
        overall = PrefixChangeRow("All", None, "", 100, 49, 48, 34)
        row = PrefixChangeRow("Orange", 3215, "FR", 50, 34, 33, 26)
        text = render_table7(overall, [row])
        assert "Diff BGP" in text
        assert "49%" in text


class TestSeriesRenderers:
    def test_cdf_series(self):
        points = empirical_cdf([1 * HOUR, 24 * HOUR, 24 * HOUR])
        text = render_cdf_series({"EU": points}, title="t")
        assert "EU" in text
        assert "<=24h" in text

    def test_probability_cdfs(self):
        points = empirical_cdf([0.0, 0.5, 1.0])
        text = render_probability_cdfs({"Orange": points})
        assert "Orange" in text

    def test_hour_histogram(self):
        text = render_hour_histogram([5] * 24, title="fig")
        assert text.startswith("fig")
        # title + header + separator + 24 hour rows = 27 lines.
        assert len(text.splitlines()) == 27
        assert "23" in text

    def test_figure6(self):
        text = render_figure6({25: 500, 26: 30}, [25])
        assert "firmware" in text
        assert "25" in text

    def test_figure9(self):
        buckets = [DurationBucket("< 5m", 0, 300, 10, 9)]
        text = render_figure9(buckets, title="fig9")
        assert "< 5m" in text
        assert "90%" in text

    def test_group_durations(self):
        group = GroupDurations("EU", (DAY, DAY, 2 * DAY))
        text = render_group_durations([group], title="fig1")
        assert "EU" in text
        assert "y)" in text  # total-years legend
