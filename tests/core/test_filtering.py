"""Tests for repro.core.filtering."""

import pytest

from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.types import ConnectionLogEntry, ProbeMeta
from repro.core.filtering import (
    FilterReport,
    ProbeCategory,
    ProbeFilter,
    looks_multihomed,
)
from repro.net.ipv4 import TESTING_ADDRESS, IPv4Address, IPv4Prefix
from repro.net.pfx2as import AsMapping, IpToAsDataset, Pfx2AsSnapshot
from repro.util import timeutil
from repro.util.timeutil import DAY, HOUR

A = IPv4Address.parse("11.0.0.1")
A2 = IPv4Address.parse("11.0.0.2")
B = IPv4Address.parse("12.0.0.1")
T0 = timeutil.YEAR_2015_START


def make_ip2as():
    dataset = IpToAsDataset()
    snapshot = Pfx2AsSnapshot([
        AsMapping(IPv4Prefix.parse("11.0.0.0/8"), 100),
        AsMapping(IPv4Prefix.parse("12.0.0.0/8"), 200),
        AsMapping(IPv4Prefix.parse("193.0.0.0/21"), 3333),
    ])
    for year, month, _ in timeutil.iter_month_starts(
            timeutil.YEAR_2015_START, timeutil.YEAR_2015_END):
        dataset.add_snapshot(year, month, Pfx2AsSnapshot(snapshot.mappings()))
    return dataset


def v4(probe, start, end, addr):
    return ConnectionLogEntry(probe, T0 + start, T0 + end, addr)


def v6(probe, start, end):
    return ConnectionLogEntry(probe, T0 + start, T0 + end, None,
                              ipv6_address="2001:db8::1")


def run_filter(entries, metas=(), min_connected=DAY):
    log = ConnectionLog(entries)
    archive = ProbeArchive(metas)
    return ProbeFilter(log, archive, make_ip2as(),
                       min_connected=min_connected).run()


class TestLooksMultihomed:
    def test_alternating_pattern_detected(self):
        fixed = A
        seq = []
        for i in range(10):
            seq.extend([fixed, IPv4Address(A2.value + i)])
        assert looks_multihomed(seq)

    def test_occasional_regrant_not_detected(self):
        # A appears twice (harmonic re-grant), far from 5 runs.
        seq = [A, A2, A, B]
        assert not looks_multihomed(seq)

    def test_constant_address_not_detected(self):
        assert not looks_multihomed([A] * 50)

    def test_empty(self):
        assert not looks_multihomed([])


class TestCategories:
    def test_short_lived_excluded_from_total(self):
        report = run_filter([v4(1, 0, HOUR, A)], min_connected=DAY)
        assert report.total == 0
        assert report.verdicts[1].category is ProbeCategory.SHORT_LIVED

    def test_ipv6_only(self):
        report = run_filter([v6(1, 0, 2 * DAY)])
        assert report.verdicts[1].category is ProbeCategory.IPV6_ONLY

    def test_dual_stack(self):
        report = run_filter([v4(1, 0, DAY, A), v6(1, DAY + 1, 2 * DAY)])
        assert report.verdicts[1].category is ProbeCategory.DUAL_STACK

    def test_tagged(self):
        metas = [ProbeMeta(1, "DE", "EU", tags=("multihomed",))]
        report = run_filter([v4(1, 0, 2 * DAY, A)], metas)
        assert report.verdicts[1].category is ProbeCategory.TAGGED

    def test_untagged_meta_not_tagged(self):
        metas = [ProbeMeta(1, "DE", "EU", tags=("home",))]
        report = run_filter([v4(1, 0, 2 * DAY, A)], metas)
        assert report.verdicts[1].category is ProbeCategory.NEVER_CHANGED

    def test_behavioral_multihomed(self):
        entries = []
        clock = 0.0
        for i in range(12):
            addr = A if i % 2 == 0 else IPv4Address(A2.value + i)
            entries.append(v4(1, clock, clock + 6 * HOUR, addr))
            clock += 7 * HOUR
        report = run_filter(entries)
        assert report.verdicts[1].category is ProbeCategory.MULTIHOMED

    def test_testing_only(self):
        entries = [v4(1, 0, HOUR, TESTING_ADDRESS),
                   v4(1, 2 * HOUR, 5 * DAY, A)]
        report = run_filter(entries)
        assert report.verdicts[1].category is ProbeCategory.TESTING_ONLY

    def test_testing_then_changes_is_analyzable(self):
        entries = [v4(1, 0, HOUR, TESTING_ADDRESS),
                   v4(1, 2 * HOUR, 2 * DAY, A),
                   v4(1, 2 * DAY + HOUR, 5 * DAY, A2)]
        report = run_filter(entries)
        verdict = report.verdicts[1]
        assert verdict.category is ProbeCategory.ANALYZABLE
        # The testing entry itself is not counted as a change.
        assert len(verdict.changes) == 1

    def test_never_changed(self):
        report = run_filter([v4(1, 0, 2 * DAY, A)])
        assert report.verdicts[1].category is ProbeCategory.NEVER_CHANGED

    def test_analyzable_single_as(self):
        entries = [v4(1, 0, DAY, A), v4(1, DAY + HOUR, 3 * DAY, A2)]
        report = run_filter(entries)
        verdict = report.verdicts[1]
        assert verdict.category is ProbeCategory.ANALYZABLE
        assert not verdict.multi_as
        assert verdict.asn == 100
        assert report.analyzable_as() == [1]

    def test_analyzable_multi_as(self):
        entries = [v4(1, 0, DAY, A), v4(1, DAY + HOUR, 3 * DAY, B)]
        report = run_filter(entries)
        verdict = report.verdicts[1]
        assert verdict.category is ProbeCategory.ANALYZABLE
        assert verdict.multi_as
        assert report.analyzable_as() == []
        assert report.multi_as_probes() == [1]
        # The cross-AS change is excluded from within-AS changes.
        assert verdict.within_as_changes == []

    def test_mixed_changes_keep_within_as(self):
        entries = [v4(1, 0, DAY, A), v4(1, DAY + HOUR, 2 * DAY, A2),
                   v4(1, 2 * DAY + HOUR, 4 * DAY, B)]
        report = run_filter(entries)
        verdict = report.verdicts[1]
        assert verdict.multi_as
        assert len(verdict.changes) == 2
        assert len(verdict.within_as_changes) == 1


class TestMissingPfx2asMonth:
    def test_filter_refuses_to_guess_the_routing_table(self):
        # A change in a month with no pfx2as snapshot must raise, not fall
        # back to a different month's table (Section 3.3 uses the snapshot
        # of the assignment month specifically).
        from repro.errors import DatasetError
        dataset = IpToAsDataset()
        dataset.add_snapshot(2015, 1, Pfx2AsSnapshot([
            AsMapping(IPv4Prefix.parse("11.0.0.0/8"), 100)]))
        entries = [v4(1, 0, DAY, A),
                   v4(1, 35 * DAY, 38 * DAY, A2)]  # change lands in February
        log = ConnectionLog(entries)
        probe_filter = ProbeFilter(log, ProbeArchive(), dataset,
                                   min_connected=DAY)
        with pytest.raises(DatasetError):
            probe_filter.run()


class TestReportAggregation:
    def make_report(self):
        entries = [
            v4(1, 0, 2 * DAY, A),                                # never
            v6(2, 0, 2 * DAY),                                   # ipv6
            v4(3, 0, DAY, A), v6(3, DAY + 1, 2 * DAY),           # dual
            v4(4, 0, DAY, A), v4(4, DAY + HOUR, 3 * DAY, A2),    # analyzable
        ]
        return run_filter(entries)

    def test_counts(self):
        report = self.make_report()
        assert report.total == 4
        assert report.count(ProbeCategory.NEVER_CHANGED) == 1
        assert report.count(ProbeCategory.IPV6_ONLY) == 1
        assert report.count(ProbeCategory.DUAL_STACK) == 1
        assert report.count(ProbeCategory.ANALYZABLE) == 1

    def test_table2_rows_sum(self):
        report = self.make_report()
        rows = dict(report.table2_rows())
        filtered = (rows["Never changed"] + rows["Dual Stack"] + rows["IPv6"]
                    + rows["Multihomed / Core / Data-center (tags)"]
                    + rows["Multihomed (alternating addresses)"]
                    + rows["Only address change from 193.0.0.78"])
        assert filtered + rows["Analyzable (geography)"] == rows["Total Probes"]
        assert (rows["Analyzable (geography)"] - rows["Multiple ASes"]
                == rows["Analyzable (AS-level)"])

    def test_probes_in(self):
        report = self.make_report()
        assert report.probes_in(ProbeCategory.IPV6_ONLY) == [2]
        assert report.analyzable_geo() == [4]
