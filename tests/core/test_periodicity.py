"""Tests for repro.core.periodicity."""

import pytest

from repro.core.periodicity import (
    all_probes_row,
    as_periodicity_table,
    classify_probe,
    detect_probe_period,
    is_harmonic,
    max_within,
)
from repro.util.timeutil import DAY, HOUR, WEEK


def daily_probe(n=20, jitter=0.33 * HOUR):
    """Durations of a clean daily-renumbered probe (d - ~20 min)."""
    return [DAY - jitter] * n


class TestDetectProbePeriod:
    def test_clean_daily_probe(self):
        found = detect_probe_period(daily_probe())
        assert found is not None
        d, f = found
        assert d == 24 * HOUR
        assert f > 0.9

    def test_mixed_probe_above_threshold(self):
        durations = daily_probe(10) + [3 * HOUR] * 20
        found = detect_probe_period(durations)
        assert found is not None
        assert found[0] == 24 * HOUR

    def test_non_periodic_probe(self):
        durations = [float(i) * HOUR for i in range(7, 80, 7)]
        assert detect_probe_period(durations) is None

    def test_short_modes_ignored(self):
        # A mass of 2-hour durations is below MIN_PERIOD.
        assert detect_probe_period([2 * HOUR] * 50) is None

    def test_empty(self):
        assert detect_probe_period([]) is None

    def test_too_few_durations_never_periodic(self):
        # A single duration trivially has f = 1; it must not classify.
        assert detect_probe_period([DAY]) is None
        assert detect_probe_period([DAY, DAY]) is None
        assert detect_probe_period([DAY, DAY, DAY]) is not None

    def test_weekly_probe(self):
        found = detect_probe_period([WEEK - 0.3 * HOUR] * 10)
        assert found is not None
        assert found[0] == 168 * HOUR


class TestClassifyProbe:
    def test_periodic(self):
        verdict = classify_probe(1, daily_probe())
        assert verdict.is_periodic
        assert verdict.period == 24 * HOUR

    def test_not_periodic(self):
        verdict = classify_probe(1, [])
        assert not verdict.is_periodic
        assert verdict.period is None


class TestMaxWithinAndHarmonic:
    def test_max_within_slack(self):
        assert max_within([DAY, DAY * 1.04], DAY)
        assert not max_within([DAY, DAY * 1.10], DAY)

    def test_harmonic_multiples_allowed(self):
        durations = [DAY - 0.3 * HOUR] * 10 + [2 * DAY - 0.3 * HOUR]
        assert not max_within(durations, DAY)
        assert is_harmonic(durations, DAY)

    def test_non_harmonic_rejected(self):
        durations = [DAY] * 10 + [1.5 * DAY]
        assert not is_harmonic(durations, DAY)

    def test_all_below_is_harmonic(self):
        assert is_harmonic([DAY * 0.5, DAY], DAY)


class TestAsPeriodicityTable:
    def build(self, probes_per_as=6, periodic_per_as=5):
        durations = {}
        asn_by_probe = {}
        pid = 0
        for asn in (100, 200):
            for i in range(probes_per_as):
                pid += 1
                asn_by_probe[pid] = asn
                if asn == 100 and i < periodic_per_as:
                    durations[pid] = daily_probe()
                else:
                    durations[pid] = [float(7 + 9 * i + j * 13) * HOUR
                                      for j in range(5)]
        return durations, asn_by_probe

    def test_periodic_as_reported(self):
        durations, asns = self.build()
        rows = as_periodicity_table(durations, asns, {100: "P-ISP",
                                                      200: "S-ISP"})
        assert len(rows) == 1
        row = rows[0]
        assert row.as_name == "P-ISP"
        assert row.period_hours == 24
        assert row.n_changed == 6
        assert row.n_periodic == 5
        assert row.pct_over_75 == 1.0
        assert row.pct_max_le_d == 1.0
        assert row.pct_harmonic == 1.0

    def test_min_probes_threshold(self):
        durations, asns = self.build(probes_per_as=4)
        rows = as_periodicity_table(durations, asns, {}, min_probes=5)
        assert rows == []

    def test_min_periodic_threshold(self):
        durations, asns = self.build(periodic_per_as=2)
        rows = as_periodicity_table(durations, asns, {}, min_periodic=3)
        assert rows == []

    def test_two_periods_two_rows(self):
        durations = {}
        asns = {}
        for pid in range(1, 5):
            durations[pid] = daily_probe()
            asns[pid] = 100
        for pid in range(5, 9):
            durations[pid] = [22 * HOUR - 0.3 * HOUR] * 20
            asns[pid] = 100
        rows = as_periodicity_table(durations, asns, {100: "Mixed"})
        periods = sorted(row.period_hours for row in rows)
        assert periods == [22, 24]

    def test_rows_sorted_by_periodic_count(self):
        durations = {}
        asns = {}
        pid = 0
        for asn, count in ((100, 6), (200, 9)):
            for _ in range(count):
                pid += 1
                durations[pid] = daily_probe()
                asns[pid] = asn
        rows = as_periodicity_table(durations, asns, {})
        assert [row.asn for row in rows] == [200, 100]


class TestAllProbesRow:
    def test_counts_all_probes_at_period(self):
        durations = {1: daily_probe(), 2: daily_probe(),
                     3: [WEEK - 0.3 * HOUR] * 5}
        row = all_probes_row(durations, 24 * HOUR)
        assert row.as_name == "All"
        assert row.n_changed == 3
        assert row.n_periodic == 2
        weekly = all_probes_row(durations, 168 * HOUR)
        assert weekly.n_periodic == 1
