"""Tests for repro.core.association."""

from repro.atlas.kroot import KRootSeries
from repro.atlas.types import ConnectionLogEntry
from repro.core.association import (
    GapCause,
    associate_probe_gaps,
    classify_gap,
)
from repro.core.reboots import Reboot
from repro.net.ipv4 import IPv4Address
from repro.util.intervals import Interval, IntervalSet
from repro.util.timeutil import DAY, HOUR

A = IPv4Address.parse("192.0.2.1")
B = IPv4Address.parse("192.0.2.2")


def series(power_off=(), network_down=()):
    return KRootSeries(
        1, 0.0, 10 * DAY,
        power_off=IntervalSet(Interval(a, b) for a, b in power_off),
        network_down=IntervalSet(Interval(a, b) for a, b in network_down),
        phase=0.0)


def entry(start, end, addr):
    return ConnectionLogEntry(1, start, end, addr)


class TestClassifyGap:
    def test_network_outage_gap(self):
        outage = (2 * DAY, 2 * DAY + HOUR)
        s = series(network_down=[outage])
        event = classify_gap(entry(0, 2 * DAY, A),
                             entry(2 * DAY + HOUR + 1200, 3 * DAY, B),
                             s, [])
        assert event.cause is GapCause.NETWORK
        assert event.address_changed
        assert event.outage_duration > 0.5 * HOUR

    def test_power_outage_gap(self):
        outage = (2 * DAY, 2 * DAY + HOUR)
        s = series(power_off=[outage])
        reboot = Reboot(1, 2 * DAY + HOUR, 2 * DAY + HOUR + 300)
        event = classify_gap(entry(0, 2 * DAY, A),
                             entry(2 * DAY + HOUR + 1200, 3 * DAY, B),
                             s, [reboot])
        assert event.cause is GapCause.POWER
        assert event.address_changed
        # Duration estimated from bracketing ping rounds (~1h + cadence).
        assert HOUR <= event.outage_duration <= HOUR + 600

    def test_network_takes_priority_over_power(self):
        # Both signals present: the paper's order says network wins.
        s = series(power_off=[(2 * DAY + 1800, 2 * DAY + HOUR)],
                   network_down=[(2 * DAY, 2 * DAY + 1800)])
        reboot = Reboot(1, 2 * DAY + HOUR, 0)
        event = classify_gap(entry(0, 2 * DAY, A),
                             entry(2 * DAY + HOUR + 1200, 3 * DAY, A),
                             s, [reboot])
        assert event.cause is GapCause.NETWORK

    def test_no_outage_gap(self):
        s = series()
        event = classify_gap(entry(0, 2 * DAY, A),
                             entry(2 * DAY + 1200, 3 * DAY, B), s, [])
        assert event.cause is GapCause.NONE
        assert event.address_changed
        assert event.outage_duration == 0.0

    def test_reboot_without_missing_pings_not_power(self):
        # A reboot with continuous ping coverage (e.g. probe-only restart
        # so fast no round was missed) cannot be confirmed as power outage.
        s = series()
        reboot = Reboot(1, 2 * DAY + 100, 0)
        event = classify_gap(entry(0, 2 * DAY, A),
                             entry(2 * DAY + 300, 3 * DAY, A), s, [reboot])
        assert event.cause is GapCause.NONE

    def test_unchanged_address_recorded(self):
        s = series(network_down=[(2 * DAY, 2 * DAY + HOUR)])
        event = classify_gap(entry(0, 2 * DAY, A),
                             entry(2 * DAY + HOUR + 60, 3 * DAY, A), s, [])
        assert event.cause is GapCause.NETWORK
        assert not event.address_changed

    def test_v6_entries_never_flag_change(self):
        s = series()
        v6 = ConnectionLogEntry(1, 2 * DAY + 60, 3 * DAY, None,
                                ipv6_address="2001:db8::1")
        event = classify_gap(entry(0, 2 * DAY, A), v6, s, [])
        assert not event.address_changed


class TestAssociateProbeGaps:
    def test_one_event_per_gap(self):
        s = series(network_down=[(2 * DAY, 2 * DAY + HOUR)])
        entries = [entry(0, 2 * DAY, A),
                   entry(2 * DAY + HOUR + 1200, 5 * DAY, B),
                   entry(5 * DAY + 120, 8 * DAY, B)]
        events = associate_probe_gaps(entries, s, [])
        assert len(events) == 2
        assert events[0].cause is GapCause.NETWORK
        assert events[0].address_changed
        assert events[1].cause is GapCause.NONE
        assert not events[1].address_changed

    def test_empty_log(self):
        assert associate_probe_gaps([], series(), []) == []
