"""Tests for repro.core.reboots."""

from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import UptimeRecord
from repro.core.reboots import (
    Reboot,
    detect_all_reboots,
    detect_firmware_days,
    detect_reboots,
    firmware_filtered_reboots,
    reboots_per_day,
    remove_firmware_reboots,
)
from repro.util import timeutil
from repro.util.timeutil import DAY

T0 = timeutil.YEAR_2015_START


class TestDetectReboots:
    def test_paper_table4_example(self):
        # Table 4: counter 315038 then 19 -> reboot 19 s before the report.
        records = [
            UptimeRecord(206, 1000.0, 262531.0),
            UptimeRecord(206, 53507.0, 315038.0),
            UptimeRecord(206, 53536.0, 19.0),
            UptimeRecord(206, 53720.0, 203.0),
        ]
        reboots = detect_reboots(records)
        assert len(reboots) == 1
        assert reboots[0].time == 53536.0 - 19.0
        assert reboots[0].reported_at == 53536.0

    def test_growing_counter_no_reboot(self):
        records = [UptimeRecord(1, 100.0, 50.0), UptimeRecord(1, 200.0, 150.0)]
        assert detect_reboots(records) == []

    def test_multiple_resets(self):
        records = [
            UptimeRecord(1, 100.0, 1000.0),
            UptimeRecord(1, 200.0, 10.0),
            UptimeRecord(1, 500.0, 310.0),
            UptimeRecord(1, 600.0, 5.0),
        ]
        assert len(detect_reboots(records)) == 2

    def test_detect_all(self):
        dataset = UptimeDataset([
            UptimeRecord(1, 100.0, 1000.0), UptimeRecord(1, 200.0, 10.0),
            UptimeRecord(2, 100.0, 50.0),
        ])
        by_probe = detect_all_reboots(dataset)
        assert len(by_probe[1]) == 1
        assert by_probe[2] == []


class TestRebootsPerDay:
    def test_unique_probes_per_day(self):
        by_probe = {
            1: [Reboot(1, T0 + 3600, T0 + 3700),
                Reboot(1, T0 + 7200, T0 + 7300)],    # same day, counted once
            2: [Reboot(2, T0 + 3600, T0 + 3700)],
            3: [Reboot(3, T0 + DAY + 60, T0 + DAY + 160)],
        }
        per_day = reboots_per_day(by_probe)
        assert per_day == {1: 2, 2: 1}


class TestDetectFirmwareDays:
    def make_counts(self, spikes):
        counts = {day: 10 for day in range(1, 366)}
        for day in spikes:
            counts[day] = 100
        return counts

    def test_two_day_spikes_detected(self):
        counts = self.make_counts([100, 101, 250, 251, 252])
        assert detect_firmware_days(counts) == [100, 250]

    def test_single_day_spike_ignored(self):
        counts = self.make_counts([100])
        assert detect_firmware_days(counts) == []

    def test_threshold_uses_median(self):
        counts = {day: 10 for day in range(1, 366)}
        counts[50] = 19
        counts[51] = 19  # below 2x median
        assert detect_firmware_days(counts) == []

    def test_empty(self):
        assert detect_firmware_days({}) == []

    def test_run_ending_at_year_end(self):
        counts = self.make_counts([364, 365])
        assert detect_firmware_days(counts) == [364]

    def test_sparse_data_guard(self):
        # Median zero must not make every nonzero day a spike.
        counts = {100: 1, 101: 1}
        assert detect_firmware_days(counts) == []


class TestRemoveFirmwareReboots:
    def test_first_reboot_after_campaign_dropped(self):
        reboots = [Reboot(1, 100.0, 110.0), Reboot(1, 500.0, 510.0),
                   Reboot(1, 900.0, 910.0)]
        kept = remove_firmware_reboots(reboots, [400.0])
        assert [r.time for r in kept] == [100.0, 900.0]

    def test_two_campaigns_drop_two(self):
        reboots = [Reboot(1, 500.0, 0), Reboot(1, 900.0, 0),
                   Reboot(1, 1300.0, 0)]
        kept = remove_firmware_reboots(reboots, [400.0, 800.0])
        assert [r.time for r in kept] == [1300.0]

    def test_campaign_without_reboot_harmless(self):
        reboots = [Reboot(1, 100.0, 0)]
        kept = remove_firmware_reboots(reboots, [400.0])
        assert [r.time for r in kept] == [100.0]

    def test_bulk_filter(self):
        by_probe = {1: [Reboot(1, 500.0, 0)], 2: []}
        filtered = firmware_filtered_reboots(by_probe, [400.0])
        assert filtered[1] == []
        assert filtered[2] == []
