"""Tests for repro.core.conditional."""

import pytest

from repro.core.association import GapCause, GapEvent
from repro.core.conditional import (
    ProbeOutageStats,
    conditional_cdf_network,
    conditional_cdf_power,
    outage_renumbering_table,
    probe_outage_stats,
    stats_for_asn,
)
from repro.util.stats import cdf_fraction_at


def gap(cause, changed, probe=1):
    return GapEvent(probe, 0.0, 60.0, cause, changed, 100.0)


class TestProbeOutageStats:
    def test_tally(self):
        events = [
            gap(GapCause.NETWORK, True), gap(GapCause.NETWORK, False),
            gap(GapCause.POWER, True), gap(GapCause.NONE, True),
        ]
        stats = probe_outage_stats(1, events)
        assert stats.network_outages == 2
        assert stats.network_changes == 1
        assert stats.power_outages == 1
        assert stats.power_changes == 1
        assert stats.p_change_given_network == pytest.approx(0.5)
        assert stats.p_change_given_power == pytest.approx(1.0)

    def test_zero_outages_probability_zero(self):
        stats = probe_outage_stats(1, [gap(GapCause.NONE, True)])
        assert stats.p_change_given_network == 0.0
        assert stats.p_change_given_power == 0.0


def make_stats(probe, nw, nw_c, pw, pw_c):
    return ProbeOutageStats(probe, nw, nw_c, pw, pw_c)


class TestConditionalCdfs:
    def test_min_outages_filter(self):
        stats = [make_stats(1, 2, 2, 0, 0),   # too few nw outages
                 make_stats(2, 4, 4, 0, 0),
                 make_stats(3, 4, 0, 0, 0)]
        points = conditional_cdf_network(stats, min_outages=3)
        assert cdf_fraction_at(points, 0.0) == pytest.approx(0.5)
        assert cdf_fraction_at(points, 1.0) == pytest.approx(1.0)

    def test_power_cdf(self):
        stats = [make_stats(1, 0, 0, 3, 3), make_stats(2, 0, 0, 4, 2)]
        points = conditional_cdf_power(stats, min_outages=3)
        assert cdf_fraction_at(points, 0.5) == pytest.approx(0.5)


class TestOutageRenumberingTable:
    def build_stats(self, asn_probes):
        stats = {}
        asns = {}
        pid = 0
        for asn, specs in asn_probes.items():
            for nw, nw_c, pw, pw_c in specs:
                pid += 1
                stats[pid] = make_stats(pid, nw, nw_c, pw, pw_c)
                asns[pid] = asn
        return stats, asns

    def test_qualifying_as_listed(self):
        always = (5, 5, 4, 4)
        stats, asns = self.build_stats({100: [always] * 6})
        rows = outage_renumbering_table(stats, asns, {100: "PPP-ISP"})
        assert len(rows) == 1
        row = rows[0]
        assert row.n == 6
        assert row.pct_network_over_80 == pytest.approx(1.0)
        assert row.pct_network_eq_1 == pytest.approx(1.0)
        assert row.pct_power_eq_1 == pytest.approx(1.0)

    def test_as_without_enough_qualifying_probes_skipped(self):
        stats, asns = self.build_stats(
            {100: [(5, 5, 4, 4)] * 4 + [(5, 0, 4, 0)] * 4})
        rows = outage_renumbering_table(stats, asns, {},
                                        min_qualifying_probes=5)
        assert rows == []

    def test_probes_with_few_outages_excluded_from_n(self):
        stats, asns = self.build_stats(
            {100: [(5, 5, 4, 4)] * 5 + [(1, 1, 1, 1)] * 5})
        rows = outage_renumbering_table(stats, asns, {})
        assert rows[0].n == 5

    def test_requires_both_outage_kinds(self):
        stats, asns = self.build_stats({100: [(5, 5, 0, 0)] * 8})
        assert outage_renumbering_table(stats, asns, {}) == []

    def test_sorted_by_n(self):
        stats, asns = self.build_stats({
            100: [(5, 5, 4, 4)] * 5,
            200: [(5, 5, 4, 4)] * 9,
        })
        rows = outage_renumbering_table(stats, asns, {})
        assert [row.asn for row in rows] == [200, 100]


class TestStatsForAsn:
    def test_filters_by_asn_and_changes(self):
        stats = {1: make_stats(1, 3, 3, 0, 0), 2: make_stats(2, 3, 0, 0, 0),
                 3: make_stats(3, 3, 3, 0, 0)}
        asns = {1: 100, 2: 100, 3: 200}
        found = stats_for_asn(stats, asns, 100, changed_probes={1})
        assert [s.probe_id for s in found] == [1]
        found_all = stats_for_asn(stats, asns, 100)
        assert sorted(s.probe_id for s in found_all) == [1, 2]
