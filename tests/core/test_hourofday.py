"""Tests for repro.core.hourofday."""

import pytest

from repro.core.changes import AddressSpan
from repro.core.hourofday import (
    concentration,
    hour_histogram,
    periodic_change_hours,
)
from repro.net.ipv4 import IPv4Address
from repro.util import timeutil
from repro.util.timeutil import DAY, HOUR

ADDR = IPv4Address.parse("192.0.2.1")


def span(start, end, complete=True):
    return AddressSpan(1, ADDR, start, end, complete, complete)


class TestPeriodicChangeHours:
    def test_collects_end_hours_of_period_spans(self):
        base = timeutil.epoch(2015, 3, 1, 4, 0, 0)
        spans = [
            span(base, base + DAY - 0.3 * HOUR),       # ends ~03:42
            span(base + DAY, base + DAY + 5 * HOUR),   # 5h span, not period
        ]
        hours = periodic_change_hours(spans, 24 * HOUR)
        assert hours == [3]

    def test_incomplete_spans_skipped(self):
        base = timeutil.epoch(2015, 3, 1, 0, 0, 0)
        spans = [span(base, base + DAY, complete=False)]
        assert periodic_change_hours(spans, 24 * HOUR) == []


class TestHourHistogram:
    def test_counts(self):
        counts = hour_histogram([0, 0, 5, 23])
        assert counts[0] == 2
        assert counts[5] == 1
        assert counts[23] == 1
        assert sum(counts) == 4

    def test_rejects_bad_hour(self):
        with pytest.raises(ValueError):
            hour_histogram([24])


class TestConcentration:
    def test_night_window(self):
        counts = [10] * 6 + [1] * 18
        assert concentration(counts, (0, 6)) == pytest.approx(60 / 78)

    def test_empty(self):
        assert concentration([0] * 24, (0, 6)) == 0.0
