"""Tests for repro.core.colartifact: columnar forms of cached artifacts.

Round-trip contract under test: ``decode(encode(value))`` reproduces the
original artifact exactly — same dict iteration order, equal values,
``within_as_changes`` aliasing the matching ``changes`` objects — both
in memory and through a colpack file (the shape the artifact cache's
sidecars store).  Entry lists are dropped by design and rebuilt with
:func:`repro.core.filtering.restore_entries`.
"""

from __future__ import annotations

import pytest

from repro.core import pipeline
from repro.core.association import GapCause, GapEvent
from repro.core.changes import AddressSpan
from repro.experiments.scenarios import small_world
from repro.net.ipv4 import IPv4Address
from repro.util import colpack, timeutil

pytestmark = pytest.mark.skipif(not colpack.HAVE_NUMPY,
                                reason="columnar artifacts require numpy")

if colpack.HAVE_NUMPY:
    from repro.core.colartifact import (
        ColumnarFilterArtifact,
        ColumnarFloatMap,
        ColumnarGapEventMap,
        ColumnarSpanMap,
        decode_value,
    )

MIN_CONNECTED = 4 * timeutil.DAY


@pytest.fixture(scope="module")
def world():
    return small_world(seed=29, days=40)


@pytest.fixture(scope="module")
def report(world):
    return pipeline.stage_filter(world.connlog, world.archive, world.ip2as,
                                 min_connected=MIN_CONNECTED)


class TestFilterArtifact:
    def test_round_trip_preserves_everything_but_entries(self, report):
        back = ColumnarFilterArtifact.from_report(report).to_report()
        assert back.total == report.total
        assert list(back.verdicts) == list(report.verdicts)
        for pid, original in report.verdicts.items():
            got = back.verdicts[pid]
            assert got.category is original.category
            assert got.entries == []          # dropped by design
            assert got.changes == original.changes
            assert got.within_as_changes == original.within_as_changes
            assert got.multi_as == original.multi_as
            assert got.asn == original.asn
        assert back.entries_stripped

    def test_within_as_changes_alias_changes_objects(self, report):
        back = ColumnarFilterArtifact.from_report(report).to_report()
        aliased = 0
        for verdict in back.verdicts.values():
            for change in verdict.within_as_changes:
                assert any(change is candidate
                           for candidate in verdict.changes)
                aliased += 1
        assert aliased  # the seeded world has within-AS changes

    def test_restore_entries_round_trips_through_artifact(self, world,
                                                          report):
        back = ColumnarFilterArtifact.from_report(report).to_report()
        from repro.core.filtering import restore_entries
        restore_entries(back, world.connlog)
        for pid, original in report.verdicts.items():
            assert back.verdicts[pid].entries == original.entries, pid

    def test_colpack_file_round_trip(self, report, tmp_path):
        artifact = ColumnarFilterArtifact.from_report(report)
        path = tmp_path / "filter.col"
        colpack.write_object(path, artifact)
        loaded = colpack.load_object(path)
        assert isinstance(loaded, ColumnarFilterArtifact)
        decoded = loaded.to_report()
        assert list(decoded.verdicts) == list(report.verdicts)
        assert decoded.verdicts == report.verdicts or all(
            decoded.verdicts[pid].changes == v.changes
            for pid, v in report.verdicts.items())


class TestSpanMap:
    def test_round_trip_preserves_order_and_values(self):
        a = IPv4Address.parse("10.0.0.1")
        b = IPv4Address.parse("10.0.0.2")
        spans = {7: [AddressSpan(7, a, 0.0, 10.0, False, True),
                     AddressSpan(7, b, 10.0, 30.0, True, False)],
                 3: [],  # empty list must survive
                 5: [AddressSpan(5, a, 1.5, 2.5, True, True)]}
        back = ColumnarSpanMap.from_map(spans).to_map()
        assert back == spans
        assert list(back) == [7, 3, 5]  # insertion order, never re-sorted

    def test_mismatched_probe_id_rejected(self):
        a = IPv4Address.parse("10.0.0.1")
        with pytest.raises(ValueError, match="probe_id"):
            ColumnarSpanMap.from_map(
                {1: [AddressSpan(2, a, 0.0, 1.0, True, True)]})

    def test_shared_addresses_decode_to_shared_objects(self):
        a = IPv4Address.parse("10.9.8.7")
        spans = {1: [AddressSpan(1, a, 0.0, 1.0, True, True),
                     AddressSpan(1, a, 2.0, 3.0, True, True)]}
        back = ColumnarSpanMap.from_map(spans).to_map()
        assert back[1][0].address is back[1][1].address


class TestFloatMap:
    def test_round_trip(self):
        durations = {4: [1.0, 2.5, 3.25], 2: [], 9: [0.125]}
        back = ColumnarFloatMap.from_map(durations).to_map()
        assert back == durations
        assert list(back) == [4, 2, 9]

    def test_empty_map(self):
        assert ColumnarFloatMap.from_map({}).to_map() == {}


class TestGapEventMap:
    def test_round_trip_all_causes(self):
        events = {6: [GapEvent(6, 0.0, 5.0, GapCause.NETWORK, True, 5.0),
                      GapEvent(6, 9.0, 12.0, GapCause.POWER, False, 3.0)],
                  8: [GapEvent(8, 1.0, 2.0, GapCause.NONE, False, 0.0)]}
        back = ColumnarGapEventMap.from_map(events).to_map()
        assert back == events
        assert list(back) == [6, 8]

    def test_mismatched_probe_id_rejected(self):
        with pytest.raises(ValueError, match="probe_id"):
            ColumnarGapEventMap.from_map(
                {1: [GapEvent(2, 0.0, 1.0, GapCause.NONE, False, 0.0)]})

    def test_colpack_file_round_trip(self, tmp_path):
        events = {3: [GapEvent(3, 0.0, 4.0, GapCause.NETWORK, True, 4.0)]}
        path = tmp_path / "gaps.col"
        colpack.write_object(path, ColumnarGapEventMap.from_map(events))
        assert colpack.load_object(path).to_map() == events


class TestDecodeValue:
    def test_columnar_values_decode(self, report):
        artifact = ColumnarFilterArtifact.from_report(report)
        decoded = decode_value(artifact)
        assert list(decoded.verdicts) == list(report.verdicts)

        span_map = {1: [AddressSpan(1, IPv4Address.parse("10.0.0.1"),
                                    0.0, 1.0, True, True)]}
        assert decode_value(ColumnarSpanMap.from_map(span_map)) == span_map
        assert decode_value(ColumnarFloatMap.from_map({2: [1.0]})) == \
               {2: [1.0]}
        events = {5: [GapEvent(5, 0.0, 1.0, GapCause.NONE, False, 0.0)]}
        assert decode_value(ColumnarGapEventMap.from_map(events)) == events

    def test_plain_values_pass_through(self):
        for value in (None, 42, "text", {"a": 1}, [1, 2]):
            assert decode_value(value) is value
