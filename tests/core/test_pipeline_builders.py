"""Unit tests for AnalysisResults table/figure builders on a small world."""

import pytest

from repro.core.outage_buckets import BUCKETS
from repro.core.pipeline import pipeline_for_world
from repro.experiments.scenarios import small_world
from repro.util.stats import CdfPoint
from repro.util.timeutil import DAY, HOUR


@pytest.fixture(scope="module")
def world():
    return small_world(seed=23, days=45)


@pytest.fixture(scope="module")
def results(world):
    return pipeline_for_world(world).run()


class TestTableBuilders:
    def test_table2_rows_structure(self, results):
        rows = results.table2_rows()
        assert rows[0][0] == "Total Probes"
        assert all(isinstance(count, int) for _, count in rows)

    def test_table5_all_rows(self, results):
        daily, weekly = results.table5_all_rows()
        assert daily.period == 24 * HOUR
        assert weekly.period == 168 * HOUR
        assert daily.as_name == "All"
        assert daily.n_periodic >= 1  # the Daily-DSL fleet

    def test_table6_respects_min_outages(self, results):
        strict = results.table6_rows(min_outages=999)
        assert strict == []

    def test_table7_top_truncation(self, results):
        _overall, rows = results.table7(top=1)
        assert len(rows) <= 1


class TestFigureBuilders:
    def test_figure1_groups_cover_scenario_continents(self, results):
        labels = {g.label for g in results.figure1_groups()}
        assert labels <= {"EU", "NA", "AS", "AF", "SA", "OC"}
        assert "EU" in labels

    def test_figure2_cdf_is_step_function(self, results):
        points = results.figure2_cdf(64496)
        assert all(isinstance(p, CdfPoint) for p in points)
        fractions = [p.fraction for p in points]
        assert fractions == sorted(fractions)

    def test_as_group_durations_label(self, results):
        group = results.as_group_durations(64496)
        assert group.label == "Daily-DSL"
        group_unknown = results.as_group_durations(99999)
        assert group_unknown.label == "AS99999"
        assert group_unknown.durations == ()

    def test_figure3_unknown_country_empty(self, results):
        assert results.figure3_groups("JP") == []

    def test_figure45_histogram_shape(self, results):
        counts = results.figure45_histogram(64496, 24 * HOUR)
        assert len(counts) == 24
        assert sum(counts) > 0

    def test_figure45_wrong_period_empty(self, results):
        counts = results.figure45_histogram(64496, 168 * HOUR)
        assert sum(counts) == 0

    def test_figure6_series(self, results):
        day_counts, firmware_days = results.figure6_series()
        assert all(isinstance(day, int) for day in day_counts)
        assert all(count >= 1 for count in day_counts.values())
        assert isinstance(firmware_days, list)

    def test_figure78_cdfs_bounded(self, results):
        for builder in (results.figure7_cdf, results.figure8_cdf):
            points = builder(64497, min_outages=1)
            for point in points:
                assert 0.0 <= point.value <= 1.0
                assert 0.0 < point.fraction <= 1.0

    def test_figure9_buckets_cover_all_ranges(self, results):
        buckets = results.figure9_buckets(64497)
        assert len(buckets) == len(BUCKETS)
        assert all(b.renumbered <= b.total for b in buckets)


class TestSubsets:
    def test_as_level_durations_subset_of_geo(self, results):
        as_level = results.as_level_durations()
        assert set(as_level) <= set(results.durations_by_probe)
        assert set(as_level) <= set(results.asn_by_probe)

    def test_changed_probes_have_changes(self, results):
        for pid in results.changed_probes():
            assert results.changes_by_probe[pid]

    def test_v3_stats_subset(self, results):
        v3 = results.v3_stats()
        assert set(v3) <= set(results.stats_by_probe)

    def test_churn_methods_run(self, results, world):
        series = results.churn_series(world.config.start, world.config.end)
        assert series
        events = results.administrative_renumberings(world.config.start)
        assert events == []  # no admin ISP in the small world
