"""Tests for repro.core.prefixes."""

import pytest

from repro.core.changes import AddressChange
from repro.core.prefixes import compare_change, prefix_change_table
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.pfx2as import AsMapping, IpToAsDataset, Pfx2AsSnapshot
from repro.util import timeutil

T = timeutil.epoch(2015, 6, 15)


def make_ip2as():
    dataset = IpToAsDataset()
    snapshot = Pfx2AsSnapshot([
        AsMapping(IPv4Prefix.parse("11.0.0.0/16"), 100),
        AsMapping(IPv4Prefix.parse("11.1.0.0/16"), 100),
        AsMapping(IPv4Prefix.parse("12.0.0.0/14"), 100),
    ])
    dataset.add_snapshot(2015, 6, snapshot)
    return dataset


def change(old, new, probe=1):
    return AddressChange(probe, IPv4Address.parse(old),
                         IPv4Address.parse(new), T - 60, T)


class TestCompareChange:
    def test_same_bgp_same_16(self):
        result = compare_change(change("11.0.0.1", "11.0.0.9"), make_ip2as())
        assert result.diff_bgp is False
        assert not result.diff_slash16
        assert not result.diff_slash8

    def test_diff_bgp_same_8(self):
        result = compare_change(change("11.0.0.1", "11.1.0.1"), make_ip2as())
        assert result.diff_bgp is True
        assert result.diff_slash16
        assert not result.diff_slash8

    def test_same_bgp_diff_16(self):
        # A /14 prefix spans several /16s: BT's Table 7 pattern.
        result = compare_change(change("12.0.0.1", "12.1.0.1"), make_ip2as())
        assert result.diff_bgp is False
        assert result.diff_slash16
        assert not result.diff_slash8

    def test_diff_8(self):
        result = compare_change(change("11.0.0.1", "12.0.0.1"), make_ip2as())
        assert result.diff_bgp is True
        assert result.diff_slash8

    def test_unrouted_address_none(self):
        result = compare_change(change("11.0.0.1", "99.0.0.1"), make_ip2as())
        assert result.diff_bgp is None
        assert result.diff_slash8


class TestPrefixChangeTable:
    def test_overall_and_per_as(self):
        changes = {
            1: [change("11.0.0.1", "11.1.0.1", 1),   # diff bgp, diff 16
                change("11.1.0.1", "11.1.0.9", 1)],  # same everything
            2: [change("12.0.0.1", "12.1.0.1", 2)],  # same bgp, diff 16
        }
        asns = {1: 100, 2: 200}
        overall, rows = prefix_change_table(
            changes, asns, make_ip2as(), {100: "A", 200: "B"})
        assert overall.total_changes == 3
        assert overall.diff_bgp == 1
        assert overall.diff_slash16 == 2
        assert overall.diff_slash8 == 0
        assert overall.pct_slash16 == pytest.approx(2 / 3)
        by_name = {row.as_name: row for row in rows}
        assert by_name["A"].total_changes == 2
        assert by_name["B"].diff_slash16 == 1

    def test_rows_ordered_by_probe_count_and_top(self):
        changes = {
            1: [change("11.0.0.1", "11.0.0.2", 1)],
            2: [change("11.0.0.3", "11.0.0.4", 2)],
            3: [change("12.0.0.1", "12.0.0.2", 3)],
        }
        asns = {1: 100, 2: 100, 3: 200}
        _, rows = prefix_change_table(changes, asns, make_ip2as(), {})
        assert [row.asn for row in rows] == [100, 200]
        _, top_rows = prefix_change_table(changes, asns, make_ip2as(), {},
                                          top=1)
        assert len(top_rows) == 1

    def test_empty(self):
        overall, rows = prefix_change_table({}, {}, make_ip2as(), {})
        assert overall.total_changes == 0
        assert rows == []
        assert overall.pct_bgp == 0.0
