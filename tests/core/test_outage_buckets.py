"""Tests for repro.core.outage_buckets."""

import pytest

from repro.core.association import GapCause, GapEvent
from repro.core.outage_buckets import BUCKETS, bucket_outages
from repro.util.timeutil import DAY, HOUR, MINUTE, WEEK


def gap(duration, changed, cause=GapCause.NETWORK):
    return GapEvent(1, 0.0, 60.0, cause, changed, duration)


class TestBuckets:
    def test_bucket_edges_are_contiguous(self):
        for (_, _, high), (_, low, _) in zip(BUCKETS, BUCKETS[1:]):
            assert high == low

    def test_twelve_buckets(self):
        assert len(BUCKETS) == 12
        assert BUCKETS[0][0] == "< 5m"
        assert BUCKETS[-1][0] == "> 1w"


class TestBucketOutages:
    def test_assignment(self):
        events = [
            gap(2 * MINUTE, True),
            gap(7 * MINUTE, False),
            gap(2 * HOUR, True),
            gap(2 * DAY, True),
            gap(2 * WEEK, False),
        ]
        buckets = bucket_outages(events)
        by_label = {b.label: b for b in buckets}
        assert by_label["< 5m"].total == 1
        assert by_label["< 5m"].renumbered == 1
        assert by_label["5-10m"].total == 1
        assert by_label["5-10m"].renumbered == 0
        assert by_label["1-3h"].total == 1
        assert by_label["1-3d"].total == 1
        assert by_label["> 1w"].total == 1

    def test_no_outage_events_ignored(self):
        events = [gap(0.0, True, cause=GapCause.NONE)]
        buckets = bucket_outages(events)
        assert all(b.total == 0 for b in buckets)

    def test_renumbered_fraction(self):
        events = [gap(2 * MINUTE, True), gap(3 * MINUTE, False)]
        buckets = bucket_outages(events)
        assert buckets[0].renumbered_fraction == pytest.approx(0.5)

    def test_empty_bucket_fraction_zero(self):
        buckets = bucket_outages([])
        assert all(b.renumbered_fraction == 0.0 for b in buckets)

    def test_power_events_counted(self):
        events = [gap(10 * MINUTE, True, cause=GapCause.POWER)]
        buckets = bucket_outages(events)
        assert {b.label: b.total for b in buckets}["10-20m"] == 1
