"""Tests for repro.core.churn."""

import pytest

from repro.core.changes import AddressChange, AddressSpan
from repro.core.churn import (
    churn_series,
    daily_active_addresses,
    detect_administrative_renumbering,
    mean_churn,
)
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.pfx2as import AsMapping, IpToAsDataset, Pfx2AsSnapshot
from repro.util import timeutil
from repro.util.timeutil import DAY, HOUR

T0 = timeutil.YEAR_2015_START


def addr(text):
    return IPv4Address.parse(text)


def span(address, start_day, end_day, probe=1):
    return AddressSpan(probe, addr(address), T0 + start_day * DAY,
                       T0 + end_day * DAY, True, True)


class TestDailyActiveAddresses:
    def test_span_covers_its_days(self):
        daily = daily_active_addresses({1: [span("11.0.0.1", 0, 2)]},
                                       T0, T0 + 5 * DAY)
        assert set(daily) == {0, 1, 2}
        assert all(addr("11.0.0.1").value in v for v in daily.values())

    def test_multiple_probes_union(self):
        daily = daily_active_addresses(
            {1: [span("11.0.0.1", 0, 1)], 2: [span("11.0.0.2", 0, 1, 2)]},
            T0, T0 + 3 * DAY)
        assert len(daily[0]) == 2

    def test_empty(self):
        assert daily_active_addresses({}, T0, T0 + DAY) == {}


class TestChurnSeries:
    def test_stable_set_zero_churn(self):
        daily = {0: {1, 2}, 1: {1, 2}, 2: {1, 2}}
        points = churn_series(daily)
        assert all(p.churn_fraction == 0.0 for p in points)

    def test_full_turnover(self):
        daily = {0: {1, 2}, 1: {3, 4}}
        points = churn_series(daily)
        assert len(points) == 1
        assert points[0].appeared == 2
        assert points[0].disappeared == 2
        assert points[0].churn_fraction == pytest.approx(2.0)

    def test_mean_churn(self):
        daily = {0: {1}, 1: {1}, 2: {2}}
        assert mean_churn(churn_series(daily)) == pytest.approx(1.0)
        assert mean_churn([]) == 0.0


def make_ip2as():
    dataset = IpToAsDataset()
    snapshot = Pfx2AsSnapshot([
        AsMapping(IPv4Prefix.parse("11.0.0.0/16"), 100),
        AsMapping(IPv4Prefix.parse("11.1.0.0/16"), 100),
        AsMapping(IPv4Prefix.parse("11.99.0.0/16"), 100),
    ])
    for year, month, _ in timeutil.iter_month_starts(
            T0, timeutil.YEAR_2015_END):
        dataset.add_snapshot(year, month, Pfx2AsSnapshot(snapshot.mappings()))
    return dataset


def change(old, new, day, probe):
    at = T0 + day * DAY + 2 * HOUR
    return AddressChange(probe, addr(old), addr(new), at - 60, at)


class TestAdministrativeDetection:
    def asn_map(self, n):
        return {pid: 100 for pid in range(1, n + 1)}

    def test_mass_migration_detected(self):
        changes = {}
        for pid in range(1, 9):
            changes[pid] = [
                # Ordinary churn between the two regular prefixes first.
                change("11.0.0.%d" % pid, "11.1.0.%d" % pid, 10 + pid, pid),
                # Then the synchronized migration into 11.99/16 on day 100.
                change("11.1.0.%d" % pid, "11.99.0.%d" % pid, 100, pid),
            ]
        events = detect_administrative_renumbering(
            changes, self.asn_map(8), make_ip2as(), T0)
        assert len(events) == 1
        event = events[0]
        assert event.asn == 100
        assert event.day_index == 100
        assert event.probes_changed == 8
        assert str(event.novel_prefixes[0]) == "11.99.0.0/16"

    def test_periodic_churn_not_flagged(self):
        # Everyone changes daily but always within known prefixes.
        changes = {}
        for pid in range(1, 9):
            changes[pid] = [
                change("11.0.0.%d" % pid, "11.1.0.%d" % pid, day, pid)
                for day in range(5, 15)
            ]
        events = detect_administrative_renumbering(
            changes, self.asn_map(8), make_ip2as(), T0)
        assert events == []

    def test_partial_migration_not_flagged(self):
        # Only a quarter of probes move: below the change-fraction bar.
        changes = {pid: [change("11.0.0.%d" % pid, "11.1.0.%d" % pid,
                                20 + pid, pid)]
                   for pid in range(1, 9)}
        changes[1].append(change("11.1.0.1", "11.99.0.1", 100, 1))
        changes[2].append(change("11.1.0.2", "11.99.0.2", 100, 2))
        events = detect_administrative_renumbering(
            changes, self.asn_map(8), make_ip2as(), T0)
        assert events == []

    def test_small_as_ignored(self):
        changes = {pid: [change("11.0.0.%d" % pid, "11.99.0.%d" % pid,
                                100, pid)]
                   for pid in range(1, 4)}
        events = detect_administrative_renumbering(
            changes, self.asn_map(3), make_ip2as(), T0, min_probes=5)
        assert events == []
