"""Tests for repro.core.geography."""

import pytest

from repro.atlas.archive import ProbeArchive
from repro.atlas.types import ProbeMeta
from repro.core.geography import (
    YEAR_SECONDS,
    country_as_breakdown,
    durations_by_continent,
    durations_by_country,
)
from repro.util.timeutil import DAY, HOUR


def make_archive():
    return ProbeArchive([
        ProbeMeta(1, "DE", "EU"),
        ProbeMeta(2, "DE", "EU"),
        ProbeMeta(3, "US", "NA"),
        ProbeMeta(4, "FR", "EU"),
    ])


DURATIONS = {
    1: [DAY - 0.3 * HOUR] * 100,
    2: [DAY - 0.3 * HOUR] * 50,
    3: [60 * DAY, 70 * DAY],
    4: [7 * DAY] * 10,
}


class TestContinentAggregation:
    def test_pooling_and_order(self):
        groups = durations_by_continent(DURATIONS, make_archive())
        labels = [g.label for g in groups]
        assert set(labels) == {"EU", "NA"}
        # NA has 130 days of time; EU has 150*~1day + 70 days.
        assert groups[0].total_years >= groups[1].total_years

    def test_total_years(self):
        groups = {g.label: g for g in
                  durations_by_continent(DURATIONS, make_archive())}
        assert groups["NA"].total_years == pytest.approx(
            130 * DAY / YEAR_SECONDS)

    def test_eu_mode_at_24h(self):
        groups = {g.label: g for g in
                  durations_by_continent(DURATIONS, make_archive())}
        points = groups["EU"].cdf()
        from repro.util.stats import cdf_mass_at
        assert cdf_mass_at(points, 24 * HOUR) > 0.5

    def test_na_mode_free_long_durations(self):
        groups = {g.label: g for g in
                  durations_by_continent(DURATIONS, make_archive())}
        points = groups["NA"].cdf()
        from repro.util.stats import cdf_fraction_at
        assert cdf_fraction_at(points, 50 * DAY) == 0.0


class TestCountryAggregation:
    def test_by_country(self):
        by_country = durations_by_country(DURATIONS, make_archive())
        assert set(by_country) == {"DE", "US", "FR"}
        assert len(by_country["DE"].durations) == 150


class TestCountryAsBreakdown:
    def test_small_ases_pool_into_others(self):
        asns = {1: 3320, 2: 3320, 4: 3215}
        groups = country_as_breakdown(
            DURATIONS, asns, make_archive(), "DE",
            {3320: "DTAG"}, min_total_years=0.3)
        labels = [g.label for g in groups]
        assert labels == ["DTAG"]  # probe 4 is FR, filtered by country

    def test_others_group(self):
        archive = ProbeArchive([
            ProbeMeta(1, "DE", "EU"), ProbeMeta(2, "DE", "EU")])
        durations = {1: [DAY] * 400, 2: [DAY] * 5}
        groups = country_as_breakdown(
            durations, {1: 3320, 2: 3209}, archive, "DE",
            {3320: "DTAG", 3209: "Vodafone"}, min_total_years=0.5)
        assert [g.label for g in groups] == ["DTAG", "others"]

    def test_probe_without_asn_skipped(self):
        archive = ProbeArchive([ProbeMeta(1, "DE", "EU")])
        groups = country_as_breakdown({1: [DAY]}, {}, archive, "DE", {})
        assert groups == []
