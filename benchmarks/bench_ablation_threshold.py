"""Ablation: the 0.25 periodic-classification threshold.

The paper sets f_d > 0.25 so outage-truncated and skipped cycles don't
hide a probe's period.  Sweeping the threshold shows why: the periodic
population shrinks monotonically with the threshold, and weakly periodic
fleets (BT, where outages truncate many two-week sessions) vanish well
before strongly periodic ones (DTAG).
"""

from repro.core.periodicity import classify_probe
from repro.experiments import scenarios


def periodic_count(results, threshold, asn=None):
    count = 0
    for pid, durations in results.as_level_durations().items():
        if asn is not None and results.asn_by_probe.get(pid) != asn:
            continue
        if classify_probe(pid, durations, threshold=threshold).is_periodic:
            count += 1
    return count


def test_ablation_periodic_threshold(results, benchmark):
    thresholds = (0.10, 0.25, 0.50, 0.75, 0.90)

    def sweep():
        return {t: periodic_count(results, t) for t in thresholds}

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for threshold in thresholds:
        print("threshold %.2f -> %d periodic probes"
              % (threshold, counts[threshold]))

    # Monotone: raising the bar only removes probes.
    ordered = [counts[t] for t in thresholds]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    assert counts[0.25] > 0

    # BT's weak periodicity dies off faster than DTAG's strong one.
    bt_low = periodic_count(results, 0.25, asn=scenarios.BT)
    bt_high = periodic_count(results, 0.75, asn=scenarios.BT)
    dtag_low = periodic_count(results, 0.25, asn=scenarios.DTAG)
    dtag_high = periodic_count(results, 0.75, asn=scenarios.DTAG)
    assert bt_low > 0 and dtag_low > 0
    assert dtag_high / dtag_low > (bt_high / bt_low if bt_low else 0)
