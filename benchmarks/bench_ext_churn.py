"""Extension: daily active-address churn (Section 8 / Richter et al.).

Times the day-over-day churn series over all analyzable spans and checks
it behaves like an address population dominated by daily renumberers:
substantial steady churn, far above zero, without ever replacing the
entire population.
"""

from repro.core.churn import mean_churn
from repro.experiments.registry import get_experiment


def test_ext_daily_churn(results, benchmark):
    driver = get_experiment("ext-churn")
    output = benchmark.pedantic(lambda: driver(results), rounds=1,
                                iterations=1)
    print("\n" + output.text)

    series = output.data["series"]
    assert len(series) > 300  # nearly the whole year has day pairs
    average = output.data["mean"]
    # Daily renumberers put the mean churn well above the CDN-wide 8%
    # baseline the paper cites, but short of full turnover.
    assert 0.10 < average < 0.95
    # Away from the deployment ramp-up (first week), churn is steady:
    # appear and disappear roughly balance and the active set never empties.
    steady = [p for p in series if p.day_index > 7]
    assert steady
    assert all(p.active > 0 for p in steady)
    imbalance = [abs(p.appeared - p.disappeared) / max(p.active, 1)
                 for p in steady]
    assert sum(imbalance) / len(imbalance) < 0.10
