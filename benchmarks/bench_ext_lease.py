"""Extension: DHCP lease-duration inference (Section 5.4's aside).

The paper reads LGI's Figure 9 panel as "consistent with a DHCP lease
duration on the order of a few hours."  This benchmark times the inference
over every DHCP-looking AS and checks LGI gets a finite bound of at most a
day while the PPP ISPs are excluded (no lease semantics to infer).
"""

from repro.experiments import scenarios
from repro.experiments.registry import get_experiment
from repro.util.timeutil import HOUR


def test_ext_lease_inference(results, benchmark):
    driver = get_experiment("ext-lease")
    output = benchmark.pedantic(lambda: driver(results), rounds=1,
                                iterations=1)
    print("\n" + output.text)

    estimates = output.data["estimates"]
    # PPP ISPs renumber on short outages and never yield a lease signal.
    assert scenarios.ORANGE not in estimates
    assert scenarios.DTAG not in estimates
    # LGI is the paper's DHCP reference: a bound exists and is short.
    assert scenarios.LGI in estimates
    bound = estimates[scenarios.LGI]
    assert bound is not None
    assert bound <= 24 * HOUR
