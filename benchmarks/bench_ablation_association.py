"""Ablation: gap-association priority order (Section 3.6).

The paper attributes a gap to a network outage *before* considering a
power outage, because the k-root signal is the more reliable of the two.
This ablation compares against a reboot-first variant: whenever both
signals are present in a gap, reboot-first claims it as a power outage,
inflating the power count with events the network data already explains.
"""

from repro.core.association import GapCause
from repro.core.outages import detect_network_outages
from repro.core.association import WINDOW_MARGIN, _missing_rounds_around


def reboot_first_cause(entries, series, reboots):
    """Naive variant: check the uptime reset before the k-root signal."""
    causes = []
    ordered = sorted(reboots, key=lambda r: r.time)
    for previous, current in zip(entries, entries[1:]):
        gap_start, gap_end = previous.end, current.start
        cause = GapCause.NONE
        for reboot in ordered:
            if gap_start - WINDOW_MARGIN <= reboot.time <= gap_end:
                missing, _ = _missing_rounds_around(series, reboot.time)
                if missing:
                    cause = GapCause.POWER
                    break
        if cause is GapCause.NONE:
            records = series.records(gap_start - WINDOW_MARGIN,
                                     gap_end + WINDOW_MARGIN)
            for outage in detect_network_outages(records):
                if outage.overlaps(gap_start, gap_end):
                    cause = GapCause.NETWORK
                    break
        causes.append(cause)
    return causes


def test_ablation_association_priority(world, results, benchmark):
    from repro.core.reboots import (
        detect_all_reboots,
        firmware_filtered_reboots,
    )
    from repro.util import timeutil

    raw = detect_all_reboots(world.uptime)
    campaigns = [timeutil.YEAR_2015_START + (d - 1) * timeutil.DAY
                 for d in results.firmware_days]
    filtered = firmware_filtered_reboots(raw, campaigns)

    probe_ids = list(results.gap_events_by_probe)[:150]

    def run_naive():
        counts = {GapCause.NETWORK: 0, GapCause.POWER: 0, GapCause.NONE: 0}
        for pid in probe_ids:
            verdict = results.filter_report.verdicts[pid]
            causes = reboot_first_cause(
                verdict.entries, world.kroot.series(pid),
                filtered.get(pid, []))
            for cause in causes:
                counts[cause] += 1
        return counts

    naive = benchmark.pedantic(run_naive, rounds=1, iterations=1)
    priority = {GapCause.NETWORK: 0, GapCause.POWER: 0, GapCause.NONE: 0}
    for pid in probe_ids:
        for event in results.gap_events_by_probe[pid]:
            priority[event.cause] += 1

    print("\npriority order: %s" % {k.name: v for k, v in priority.items()})
    print("reboot-first:   %s" % {k.name: v for k, v in naive.items()})

    # Same gaps classified either way.
    assert sum(naive.values()) == sum(priority.values())
    # Reboot-first claims at least as many power outages and strictly
    # fewer network outages when the signals co-occur.
    assert naive[GapCause.POWER] >= priority[GapCause.POWER]
    assert naive[GapCause.NETWORK] <= priority[GapCause.NETWORK]
    # Both agree on the unexplained remainder.
    assert naive[GapCause.NONE] == priority[GapCause.NONE]
