"""Ablation: total time fraction vs raw duration counts (Section 4.1).

The paper rejects plain duration CDFs because short durations are
overrepresented: in the Table 1 example only half the durations are a day
long, yet daily addresses account for three quarters of the time.  This
ablation quantifies the same effect on the full DTAG fleet: the time-
weighted mass at the 24 h mode exceeds the count-weighted mass.
"""

from repro.core.timefraction import bin_duration, total_time_fraction
from repro.experiments import scenarios
from repro.util.timeutil import HOUR


def test_ablation_count_vs_time_weighting(results, benchmark):
    durations = []
    for pid, probe_durations in results.as_level_durations().items():
        if results.asn_by_probe.get(pid) == scenarios.DTAG:
            durations.extend(probe_durations)
    assert durations, "no DTAG durations in scenario"

    def compute():
        time_at_mode = total_time_fraction(durations, 24 * HOUR)
        total = sum(durations)
        short = [d for d in durations if bin_duration(d) < 24 * HOUR]
        count_short = len(short) / len(durations)
        time_short = sum(short) / total
        return time_at_mode, count_short, time_short

    time_at_mode, count_short, time_short = benchmark.pedantic(
        compute, rounds=3, iterations=1)
    print("\nDTAG: time fraction at 24h mode %.3f; sub-24h durations are "
          "%.3f of the count but only %.3f of the time"
          % (time_at_mode, count_short, time_short))

    # The paper's argument: truncated sessions are overrepresented by
    # count — a raw duration CDF would overweight them relative to the
    # share of wall-clock time they explain.
    assert count_short > time_short
    assert time_at_mode > 0.5
