"""Figure 6: probes rebooting per day with firmware-update spikes.

Times reboot detection plus spike inference over the whole uptime dataset
and checks each configured firmware campaign is recovered within a few
days (the paper matched three of five documented dates exactly and two
approximately).
"""

from repro.core.reboots import (
    detect_all_reboots,
    detect_firmware_days,
    reboots_per_day,
)
from repro.util import timeutil


def test_figure6_firmware_spikes(world, benchmark):
    def run():
        by_probe = detect_all_reboots(world.uptime)
        per_day = reboots_per_day(by_probe)
        return per_day, detect_firmware_days(per_day)

    per_day, firmware_days = benchmark.pedantic(run, rounds=1, iterations=1)
    campaign_days = [timeutil.day_of_year(t)
                     for t in world.config.firmware_campaigns]
    print("\nInferred firmware days: %s" % firmware_days)
    print("Configured campaign days: %s" % campaign_days)

    assert firmware_days, "no spikes detected"
    # Every configured campaign is recovered within a 3-day window.
    for campaign in campaign_days:
        assert any(abs(day - campaign) <= 3 for day in firmware_days), \
            "campaign day %d not recovered" % campaign
    # And nothing spurious: at most one extra inferred day.
    assert len(firmware_days) <= len(campaign_days) + 1

    # Spike magnitude: campaign days dwarf the median day.
    counts = sorted(per_day.values())
    median = counts[len(counts) // 2]
    peak = max(per_day.get(day, 0) for day in firmware_days)
    assert peak > 2 * median
