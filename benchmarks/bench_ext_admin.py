"""Extension: administrative renumbering detection (Section 8).

The paper found exactly one instance of mass prefix migration all year.
The scenario plants one too (EU-Renum-Cable migrates every customer to a
reserve prefix in late July); this benchmark times the detector and checks
it recovers that event — and nothing else — from 50k+ ordinary changes.
"""

from repro.experiments.registry import get_experiment
from repro.util import timeutil


def test_ext_administrative_renumbering(results, benchmark):
    driver = get_experiment("ext-admin")
    output = benchmark.pedantic(lambda: driver(results), rounds=1,
                                iterations=1)
    print("\n" + output.text)

    events = output.data["events"]
    assert len(events) == 1, "expected exactly one administrative event"
    event = events[0]
    assert results.as_names.get(event.asn) == "EU-Renum-Cable"
    # Planted on day 206 (events carry 0-based day indices).
    assert abs((event.day_index + 1) - 206) <= 1
    assert event.changed_fraction > 0.6
    assert len(event.novel_prefixes) == 1
