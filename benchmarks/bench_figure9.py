"""Figure 9: renumbering likelihood vs outage duration, LGI and Orange.

The paper's sharpest DHCP-vs-PPP contrast: LGI renumbers on under 3% of
sub-hour outages but on more than a quarter of 12-hour-plus ones, while
Orange renumbers on the overwhelming majority of even the shortest
outages.
"""

from repro.core.report import render_figure9
from repro.experiments import scenarios
from repro.util.timeutil import HOUR


def _pooled(buckets, low_hours, high_hours):
    total = changed = 0
    for bucket in buckets:
        if bucket.low >= low_hours * HOUR and bucket.high <= high_hours * HOUR:
            total += bucket.total
            changed += bucket.renumbered
    return total, changed


def test_figure9_outage_duration_buckets(results, benchmark):
    def build():
        return (results.figure9_buckets(scenarios.LGI),
                results.figure9_buckets(scenarios.ORANGE))

    lgi, orange = benchmark.pedantic(build, rounds=3, iterations=1)
    print("\n" + render_figure9(lgi, title="Figure 9 (left): LGI"))
    print("\n" + render_figure9(orange, title="Figure 9 (right): Orange"))

    # LGI: short outages almost never renumber...
    total, changed = _pooled(lgi, 0, 1)
    assert total > 50
    assert changed / total < 0.10
    # ...but half-day-plus outages often do (paper: >25%).
    long_total = sum(b.total for b in lgi if b.low >= 12 * HOUR)
    long_changed = sum(b.renumbered for b in lgi if b.low >= 12 * HOUR)
    assert long_total > 0
    assert long_changed / long_total > 0.25

    # Orange: even sub-hour outages renumber (paper: 75-91%).
    total, changed = _pooled(orange, 0, 1)
    assert total > 50
    assert changed / total > 0.7
