"""Table 1: connection-log sample with address durations.

Regenerates a daily-renumbered probe's log and checks the durations sit
just under 24 hours (the paper's 23.6 h rows), with ~20-minute gaps from
TCP retransmission exhaustion between connections.
"""

from repro.experiments.tables import table1


def test_table1_connection_log_sample(benchmark):
    output = benchmark.pedantic(table1, rounds=3, iterations=1)
    print("\n" + output.text)

    durations = output.data["durations_hours"]
    assert len(durations) >= 3
    # Every inner duration is a daily renumbering minus the reconnect gap.
    assert all(23.0 < d < 24.05 for d in durations)
    assert output.data["entries"] >= 5
