"""Figure 5: DTAG's periodic changes concentrate in night hours.

Most DTAG CPEs schedule their daily reconnect between 0 and 6 GMT (the
paper observes almost three quarters of periodic changes there), while a
minority free-runs across the rest of the day.
"""

from repro.core.report import render_hour_histogram
from repro.experiments import scenarios
from repro.util.timeutil import HOUR


def test_figure5_dtag_hours(results, benchmark):
    counts = benchmark.pedantic(
        lambda: results.figure45_histogram(scenarios.DTAG, 24 * HOUR),
        rounds=3, iterations=1)
    print("\n" + render_hour_histogram(counts, title="Figure 5: DTAG"))

    total = sum(counts)
    assert total > 1000
    night = sum(counts[0:6]) / total
    # Paper: ~3/4 of periodic changes between hours 0 and 6 GMT.
    assert night > 0.6
    # But not all: some CPEs lack the sync feature.
    assert night < 0.98
