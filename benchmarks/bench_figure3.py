"""Figure 3: duration CDFs for German ISPs.

Checks the paper's Germany picture: DTAG and both Telefonicas renumber
every 24 hours (with the pooled 'others' also showing a 24 h mode), while
the cable ISPs Kabel Deutschland and Kabel BW spend >90% of their time in
durations longer than two weeks.
"""

from repro.core.report import render_group_durations
from repro.util.stats import cdf_fraction_at, cdf_mass_at
from repro.util.timeutil import HOUR, WEEK


def test_figure3_german_isps(results, benchmark):
    groups = benchmark.pedantic(lambda: results.figure3_groups("DE"),
                                rounds=3, iterations=1)
    print("\n" + render_group_durations(groups, title="Figure 3"))

    by_label = {group.label: group for group in groups}
    assert "DTAG" in by_label

    for periodic in ("DTAG", "Telefonica DE 1", "Telefonica DE 2"):
        if periodic not in by_label:
            continue
        cdf = by_label[periodic].cdf()
        assert cdf_mass_at(cdf, 24 * HOUR) > 0.4, periodic

    for stable in ("Kabel Deutschland", "Kabel BW"):
        if stable not in by_label:
            continue
        cdf = by_label[stable].cdf()
        assert cdf_mass_at(cdf, 24 * HOUR) < 0.1, stable
        # >90% of total time in durations longer than two weeks.
        assert cdf_fraction_at(cdf, 2 * WEEK) < 0.1, stable
