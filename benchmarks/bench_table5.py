"""Table 5: periodic renumbering per AS.

Times the periodicity classification over all AS-level probes and checks
the paper's headline rows: Orange periodic at 168 h, DTAG at 24 h, BT
weakly at ~2 weeks, and the stable DHCP ISPs absent.  Weekly renumberers
rarely exceed their period; daily ones often show harmonics.
"""

from repro.core.report import render_table5
from repro.experiments import scenarios


def find_row(rows, asn, period_hours=None):
    for row in rows:
        if row.asn == asn and (period_hours is None
                               or row.period_hours == period_hours):
            return row
    return None


def test_table5_periodic_renumbering(results, benchmark):
    rows = benchmark.pedantic(results.table5_rows, rounds=3, iterations=1)
    all_rows = results.table5_all_rows()
    print("\n" + render_table5(rows, all_rows))

    orange = find_row(rows, scenarios.ORANGE)
    assert orange is not None
    assert orange.period_hours == 168
    assert orange.n_periodic / orange.n_changed > 0.7

    dtag = find_row(rows, scenarios.DTAG)
    assert dtag is not None
    assert dtag.period_hours == 24
    assert dtag.pct_over_75 > 0.6

    bt = find_row(rows, scenarios.BT)
    assert bt is not None
    assert bt.period_hours in (336, 337)
    # BT is weakly periodic: only ~a fifth of its probes.
    assert bt.n_periodic / bt.n_changed < 0.45

    # Stable DHCP ISPs never qualify as periodic.
    assert find_row(rows, scenarios.LGI) is None
    assert find_row(rows, scenarios.VERIZON) is None
    assert find_row(rows, scenarios.COMCAST) is None

    # Weekly probes almost never exceed the period; daily probes show
    # harmonics more often (the paper's 94% vs 44% MAX<=d contrast).
    daily_all, weekly_all = all_rows
    assert weekly_all.pct_max_le_d > daily_all.pct_max_le_d
    assert daily_all.n_periodic > 0 and weekly_all.n_periodic > 0
