"""Table 7: address changes across prefixes.

Times the prefix comparison over every observed change and checks the
paper's headline numbers: roughly half of all changes cross BGP prefixes,
a third cross /8s; Orange scatters widely, DTAG and Verizon are the
stickiest, and BT's 'Diff /16' exceeds its 'Diff BGP' because its routed
prefixes are wider than a /16.
"""

from repro.core.report import render_table7
from repro.experiments import scenarios


def test_table7_prefix_changes(results, benchmark):
    overall, rows = benchmark.pedantic(lambda: results.table7(top=10),
                                       rounds=1, iterations=1)
    print("\n" + render_table7(overall, rows))

    assert overall.total_changes > 1000
    # Paper: 48.9% across BGP prefixes, 33.5% across /8s.
    assert 0.35 < overall.pct_bgp < 0.65
    assert 0.20 < overall.pct_slash8 < 0.50

    by_asn = {row.asn: row for row in rows}
    orange = by_asn[scenarios.ORANGE]
    dtag = by_asn[scenarios.DTAG]
    assert orange.pct_bgp > 0.55
    assert dtag.pct_bgp < 0.35
    assert orange.pct_bgp > dtag.pct_bgp

    # Even /8-level blacklist widening fails for a fifth of DTAG changes.
    assert dtag.pct_slash8 > 0.15

    if scenarios.BT in by_asn:
        bt = by_asn[scenarios.BT]
        assert bt.pct_slash16 > bt.pct_bgp
