"""Ablation: duration-bin width for the total-time-fraction metric.

The pipeline snaps durations to 1-hour bins before computing time
fractions.  This ablation shows the choice matters: fine bins leave the
metric intact (sessions cluster within minutes of the period), while
coarse bins destroy the paper's ability to distinguish nearby periods —
Orange Polska's 22 h and 24 h fleets (Table 5) merge at 6-hour bins.
"""

from repro.core.periodicity import as_periodicity_table
from repro.experiments import scenarios
from repro.util.timeutil import HOUR


def rows_at_bin(results, bin_width):
    return as_periodicity_table(
        results.as_level_durations(), results.asn_by_probe,
        results.as_names, results.as_countries, bin_width=bin_width)


def test_ablation_bin_width(results, benchmark):
    by_width = benchmark.pedantic(
        lambda: {w: rows_at_bin(results, w * HOUR) for w in (0.5, 1, 2, 6)},
        rounds=1, iterations=1)

    for width, rows in by_width.items():
        polska = sorted(row.period_hours for row in rows
                        if row.asn == 5617)
        print("bin=%gh -> Orange Polska periods: %s, total rows: %d"
              % (width, polska, len(rows)))

    # At <= 1 h bins the 22 h and 24 h Orange Polska fleets are separable.
    fine = [row for row in by_width[1] if row.asn == 5617]
    assert {row.period_hours for row in fine} >= {22, 24} or len(fine) >= 1

    # Headline ISPs are detected at every reasonable width.
    for width in (0.5, 1, 2):
        asns = {row.asn for row in by_width[width]}
        assert scenarios.ORANGE in asns, width
        assert scenarios.DTAG in asns, width

    # At 6 h bins nearby periods merge: strictly fewer distinct
    # (AS, period) rows than at 1 h.
    assert len(by_width[6]) <= len(by_width[1])
    coarse_polska = {row.period_hours for row in by_width[6]
                     if row.asn == 5617}
    assert len(coarse_polska) <= 1
