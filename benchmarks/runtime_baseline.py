"""Machine-readable runtime baseline: serial vs sharded vs warm cache.

Writes ``BENCH_runtime.json`` (at the repo root by default) recording
end-to-end analysis wall time over the paper scenario for:

* ``serial``    — ``jobs=1``, no cache (the pre-runtime pipeline path);
* ``parallel``  — ``jobs=N`` (default 4, clamped to the host's cpu
  count), no cache; skipped outright on a single-cpu host, where the
  number would measure time-slicing;
* ``cold_cache``— effective jobs with an empty artifact cache (prime
  cost); must land within ``--cold-ratio-limit`` of serial;
* ``warm_cache``— ``jobs=1`` re-run against the primed cache;
* ``distributed`` — loopback coordinator plus 2 socket workers
  (``repro-dist``), recorded in its own section and tagged
  ``oversubscribed`` when the workers outnumber the cpus (the wall time
  then measures protocol overhead plus time-slicing, not scale-out).

The ``jobs`` section records both the *requested* and the *effective*
worker counts — the effective number is what every parallel/cache run
actually used, so a reader can never mistake an oversubscribed timing
for a parallel one.

Every run must produce the same canonical results digest — the harness
asserts it (and ``--expect-digest`` pins it to a known value) — so the
recorded speedups are for *identical* output.

Usage::

    PYTHONPATH=src python benchmarks/runtime_baseline.py
    PYTHONPATH=src python benchmarks/runtime_baseline.py --scale 0.25 --jobs 8
    PYTHONPATH=src python benchmarks/runtime_baseline.py --scale 2 \
        --serial-only --out /dev/stdout
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.runtime import (
    RuntimeConfig,
    code_version,
    results_digest,
    runner_for_bundle,
)
from repro.runtime.stages import STAGES
from repro.sim.io import load_bundle, write_world
from repro.sim.scenario import paper_scenario
from repro.sim.world import build_world

REPO_ROOT = Path(__file__).resolve().parent.parent


def _timed_run(bundle, config: RuntimeConfig) -> tuple[float, str, object]:
    started = time.perf_counter()
    runner = runner_for_bundle(bundle, config)
    results = runner.run()
    return time.perf_counter() - started, results_digest(results), runner


def _best_timed_run(bundle, make_config, repeat: int):
    """Best-of-``repeat`` wall time for one execution mode.

    ``make_config(i)`` builds the i-th repetition's config (cold-cache
    runs hand out a fresh cache directory each time).  The *minimum*
    wall time is the repetition least disturbed by scheduler noise —
    on shared single-cpu hosts a stolen time slice can double a
    sub-second measurement, and a gated ratio must not fail on that.
    Digests are asserted identical across repetitions; the last
    repetition's runner is returned for report inspection.
    """
    best_s, digest, last_runner = None, None, None
    for index in range(max(1, repeat)):
        seconds, run_digest, runner = _timed_run(bundle, make_config(index))
        if digest is None:
            digest = run_digest
        elif run_digest != digest:
            raise AssertionError(
                "repetitions disagree on results: %s vs %s"
                % (digest, run_digest))
        if best_s is None or seconds < best_s:
            best_s = seconds
        last_runner = runner
    return best_s, digest, last_runner


def _timed_dist_run(bundle, workers: int = 2):
    """Time the full pipeline through loopback sockets (repro-dist)."""
    from repro.dist.coordinator import DistConfig, dist_runner_for_bundle
    from repro.dist.loopback import run_loopback
    from repro.runtime.workers import WorkerContext
    from repro.util.colpack import HAVE_NUMPY

    started = time.perf_counter()
    runner = dist_runner_for_bundle(bundle, DistConfig(workers=workers))
    context = WorkerContext(
        connlog=bundle.connlog, archive=bundle.archive,
        ip2as=bundle.ip2as, kroot=bundle.kroot, uptime=bundle.uptime,
        min_connected=runner._min_connected, columnar=HAVE_NUMPY)
    run = run_loopback(runner, context, worker_count=workers)
    if run.worker_errors:
        raise AssertionError("distributed bench workers died: %r"
                             % (run.worker_errors,))
    return time.perf_counter() - started, run.digest, run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record the serial / sharded / warm-cache analysis "
                    "baseline into BENCH_runtime.json")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="paper-scenario scale (default %(default)s)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="scenario seed (default %(default)s)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the parallel runs "
                             "(default %(default)s)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_runtime.json"),
                        help="output path (default %(default)s)")
    parser.add_argument("--serial-only", action="store_true",
                        help="time only the serial leg and emit a compact "
                             "record (for throughput-vs-scale tables)")
    parser.add_argument("--cold-ratio-limit", type=float, default=1.5,
                        help="fail if cold-cache wall time exceeds this "
                             "multiple of serial (default %(default)s; "
                             "0 disables)")
    parser.add_argument("--min-serial-rps", type=float, default=None,
                        help="fail if serial records/sec falls below this "
                             "floor (default: no floor)")
    parser.add_argument("--expect-digest", default=None,
                        help="fail unless the serial results digest equals "
                             "this value (default: only cross-mode "
                             "equality is asserted)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per local timing, recording the "
                             "best (default %(default)s) — sheds scheduler "
                             "noise on shared single-cpu hosts")
    args = parser.parse_args(argv)

    print("simulating paper scenario (scale=%g seed=%d)..."
          % (args.scale, args.seed), file=sys.stderr)
    world = build_world(paper_scenario(scale=args.scale, seed=args.seed))

    cpu_count = os.cpu_count() or 1
    # Everything that runs worker processes locally uses the *effective*
    # job count: asking for more workers than cpus just time-slices one
    # core, and a primed-cache run must not pay that tax either.
    effective_jobs = max(1, min(args.jobs, cpu_count))
    # Throughput normalizes wall time by input size (probes plus
    # connection-log entries), making runs at different --scale
    # comparable where raw seconds are not.
    records = len(world.archive) + world.connlog.entry_count()

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        write_world(world, Path(tmp) / "bundle")
        bundle = load_bundle(Path(tmp) / "bundle")

        print("timing serial (jobs=1, best of %d)..." % args.repeat,
              file=sys.stderr)
        serial_s, serial_digest, _ = _best_timed_run(
            bundle, lambda i: RuntimeConfig(), args.repeat)

        if args.expect_digest and serial_digest != args.expect_digest:
            raise AssertionError(
                "results digest drifted: expected %s, got %s"
                % (args.expect_digest, serial_digest))
        serial_rps = records / serial_s
        if args.min_serial_rps is not None and serial_rps < args.min_serial_rps:
            raise AssertionError(
                "serial throughput regressed: %.1f records/sec < floor %.1f"
                % (serial_rps, args.min_serial_rps))

        if args.serial_only:
            payload = {
                "scenario": {"scale": args.scale, "seed": args.seed,
                             "probes": len(world.archive),
                             "connlog_entries": world.connlog.entry_count(),
                             "fingerprint": bundle.fingerprint},
                "machine": {"python": platform.python_version(),
                            "platform": platform.platform(),
                            "cpu_count": cpu_count},
                "code_version": code_version(),
                "results_digest": serial_digest,
                "timing": {"repeat": args.repeat, "statistic": "min"},
                "seconds": {"serial": round(serial_s, 3)},
                "records_per_sec": {"records": records,
                                    "serial": round(serial_rps, 1)},
            }
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print("wrote %s (serial %.3fs, %.1f records/sec)"
                  % (args.out, serial_s, serial_rps))
            return 0

        if effective_jobs == 1:
            # One usable worker: a "parallel" wall time measures
            # fork/IPC and time-slicing, not parallelism — skip rather
            # than record a number someone could mistake for a speedup.
            print("skipping parallel: single cpu (oversubscribed)",
                  file=sys.stderr)
            parallel_s, parallel_digest = None, serial_digest
        else:
            print("timing parallel (jobs=%d, best of %d)..."
                  % (effective_jobs, args.repeat), file=sys.stderr)
            parallel_s, parallel_digest, _ = _best_timed_run(
                bundle, lambda i: RuntimeConfig(jobs=effective_jobs),
                args.repeat)

        dist_workers = 2
        print("timing distributed (loopback, %d socket workers)..."
              % dist_workers, file=sys.stderr)
        dist_s, dist_digest, dist_run_result = _timed_dist_run(
            bundle, workers=dist_workers)

        print("timing cold cache (jobs=%d, best of %d)..."
              % (effective_jobs, args.repeat), file=sys.stderr)
        # A fresh directory per repetition keeps every cold run truly
        # cold; warm runs then read whichever cache primed last.
        cache_dir = Path(tmp) / ("cache-%d" % (max(1, args.repeat) - 1))
        cold_s, cold_digest, _ = _best_timed_run(
            bundle,
            lambda i: RuntimeConfig(jobs=effective_jobs,
                                    cache_dir=Path(tmp) / ("cache-%d" % i)),
            args.repeat)

        print("timing warm cache (jobs=1, best of %d)..." % args.repeat,
              file=sys.stderr)
        warm_s, warm_digest, warm_runner = _best_timed_run(
            bundle, lambda i: RuntimeConfig(jobs=1, cache_dir=cache_dir),
            args.repeat)

        digests = {serial_digest, parallel_digest, cold_digest,
                   warm_digest, dist_digest}
        if len(digests) != 1:
            raise AssertionError(
                "execution modes disagree on results: %r" % (digests,))
        # Non-cacheable stages (pure reshaping cheaper than a cache
        # round-trip) recompute by design; anything else recomputing on
        # a primed cache is a caching bug.
        uncacheable = {spec.name for spec in STAGES if not spec.cacheable}
        recomputed = set(warm_runner.report.computed_stages) - uncacheable
        if recomputed:
            raise AssertionError(
                "warm run recomputed cacheable stages: %r"
                % (sorted(recomputed),))
        if args.cold_ratio_limit and cold_s > args.cold_ratio_limit * serial_s:
            raise AssertionError(
                "cold-cache pathology: priming the cache took %.3fs, "
                "%.2fx serial (%.3fs); limit is %.2fx"
                % (cold_s, cold_s / serial_s, serial_s,
                   args.cold_ratio_limit))

        if parallel_s is None:
            parallel_entry = {"seconds": None,
                              "skipped": "oversubscribed (cpu_count=%d)"
                                         % cpu_count}
        else:
            parallel_entry = {"seconds": round(parallel_s, 3),
                              "jobs": effective_jobs}
        # Two worker processes plus the coordinator on fewer cpus
        # time-slice rather than scale out; the tag travels with the raw
        # number so downstream readers cannot mistake protocol-overhead
        # wall time for a distributed speedup.
        dist_oversubscribed = cpu_count < dist_workers + 1
        payload = {
            "scenario": {"scale": args.scale, "seed": args.seed,
                         "probes": len(world.archive),
                         "connlog_entries": world.connlog.entry_count(),
                         "fingerprint": bundle.fingerprint},
            "machine": {"python": platform.python_version(),
                        "platform": platform.platform(),
                        "cpu_count": cpu_count},
            "code_version": code_version(),
            "results_digest": serial_digest,
            "timing": {"repeat": args.repeat, "statistic": "min"},
            "jobs": {"requested": args.jobs, "effective": effective_jobs},
            "seconds": {"serial": round(serial_s, 3),
                        "parallel": parallel_entry,
                        "cold_cache": round(cold_s, 3),
                        "warm_cache": round(warm_s, 3)},
            "distributed": {
                "mode": "loopback",
                "workers": dist_workers,
                "oversubscribed": dist_oversubscribed,
                "seconds": round(dist_s, 3),
                "records_per_sec": round(records / dist_s, 1),
                "leases_served": sum(
                    summary.leases_served
                    for summary in dist_run_result.summaries.values()),
                "digest_matches_serial": dist_digest == serial_digest},
            "records_per_sec": {
                "records": records,
                "serial": round(serial_rps, 1),
                "cold_cache": round(records / cold_s, 1),
                "warm_cache": round(records / warm_s, 1)},
            "cold_vs_serial_ratio": round(cold_s / serial_s, 2),
            "speedup_vs_serial": {
                "parallel": (None if parallel_s is None
                             else round(serial_s / parallel_s, 2)),
                "warm_cache": round(serial_s / warm_s, 2)},
            "metrics": obs.metrics_snapshot(),
        }
        if parallel_s is None:
            payload["notes"] = (
                "seconds.parallel skipped: one effective worker "
                "(cpu_count=%d), so worker processes would time-slice a "
                "single core and the wall time would measure fork/IPC "
                "overhead, not parallelism" % cpu_count)
        if dist_oversubscribed:
            payload["distributed"]["notes"] = (
                "%d socket workers plus the coordinator share %d "
                "cpu(s): this wall time measures protocol overhead "
                "under time-slicing, not distributed scale-out"
                % (dist_workers, cpu_count))

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["seconds"]), file=sys.stderr)
    parallel_x = payload["speedup_vs_serial"]["parallel"]
    print("wrote %s (parallel %s, warm cache %.2fx vs serial, "
          "distributed %.3fs loopback x2)"
          % (args.out,
             "n/a (oversubscribed)" if parallel_x is None
             else "%.2fx" % parallel_x,
             payload["speedup_vs_serial"]["warm_cache"],
             payload["distributed"]["seconds"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
