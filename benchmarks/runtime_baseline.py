"""Machine-readable runtime baseline: serial vs sharded vs warm cache.

Writes ``BENCH_runtime.json`` (at the repo root by default) recording
end-to-end analysis wall time over the paper scenario for:

* ``serial``    — ``jobs=1``, no cache (the pre-runtime pipeline path);
* ``parallel``  — ``jobs=N`` (default 4), no cache; skipped outright on
  a single-cpu host, where the number would measure time-slicing;
* ``cold_cache``— ``jobs=N`` with an empty artifact cache (prime cost);
* ``warm_cache``— ``jobs=1`` re-run against the primed cache;
* ``distributed`` — loopback coordinator plus 2 socket workers
  (``repro-dist``), recorded in its own section.

Every run must produce the same canonical results digest — the harness
asserts it — so the recorded speedups are for *identical* output.

Usage::

    PYTHONPATH=src python benchmarks/runtime_baseline.py
    PYTHONPATH=src python benchmarks/runtime_baseline.py --scale 0.25 --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.runtime import (
    RuntimeConfig,
    code_version,
    results_digest,
    runner_for_bundle,
)
from repro.sim.io import load_bundle, write_world
from repro.sim.scenario import paper_scenario
from repro.sim.world import build_world

REPO_ROOT = Path(__file__).resolve().parent.parent


def _timed_run(bundle, config: RuntimeConfig) -> tuple[float, str, object]:
    started = time.perf_counter()
    runner = runner_for_bundle(bundle, config)
    results = runner.run()
    return time.perf_counter() - started, results_digest(results), runner


def _timed_dist_run(bundle, workers: int = 2):
    """Time the full pipeline through loopback sockets (repro-dist)."""
    from repro.dist.coordinator import DistConfig, dist_runner_for_bundle
    from repro.dist.loopback import run_loopback
    from repro.runtime.workers import WorkerContext

    started = time.perf_counter()
    runner = dist_runner_for_bundle(bundle, DistConfig(workers=workers))
    context = WorkerContext(
        connlog=bundle.connlog, archive=bundle.archive,
        ip2as=bundle.ip2as, kroot=bundle.kroot, uptime=bundle.uptime,
        min_connected=runner._min_connected)
    run = run_loopback(runner, context, worker_count=workers)
    if run.worker_errors:
        raise AssertionError("distributed bench workers died: %r"
                             % (run.worker_errors,))
    return time.perf_counter() - started, run.digest, run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record the serial / sharded / warm-cache analysis "
                    "baseline into BENCH_runtime.json")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="paper-scenario scale (default %(default)s)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="scenario seed (default %(default)s)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the parallel runs "
                             "(default %(default)s)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_runtime.json"),
                        help="output path (default %(default)s)")
    args = parser.parse_args(argv)

    print("simulating paper scenario (scale=%g seed=%d)..."
          % (args.scale, args.seed), file=sys.stderr)
    world = build_world(paper_scenario(scale=args.scale, seed=args.seed))

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        write_world(world, Path(tmp) / "bundle")
        bundle = load_bundle(Path(tmp) / "bundle")

        print("timing serial (jobs=1)...", file=sys.stderr)
        serial_s, serial_digest, _ = _timed_run(bundle, RuntimeConfig())

        cpu_count = os.cpu_count() or 1
        if cpu_count == 1:
            # One cpu: a "parallel" wall time measures fork/IPC and
            # time-slicing, not parallelism — skip rather than record a
            # number someone could mistake for a speedup.
            print("skipping parallel: single cpu (oversubscribed)",
                  file=sys.stderr)
            parallel_s, parallel_digest = None, serial_digest
        else:
            print("timing parallel (jobs=%d)..." % args.jobs,
                  file=sys.stderr)
            parallel_s, parallel_digest, _ = _timed_run(
                bundle, RuntimeConfig(jobs=args.jobs))

        print("timing distributed (loopback, 2 socket workers)...",
              file=sys.stderr)
        dist_s, dist_digest, dist_run_result = _timed_dist_run(bundle)

        cache_dir = Path(tmp) / "cache"
        print("timing cold cache (jobs=%d)..." % args.jobs, file=sys.stderr)
        cold_s, cold_digest, _ = _timed_run(
            bundle, RuntimeConfig(jobs=args.jobs, cache_dir=cache_dir))

        print("timing warm cache (jobs=1)...", file=sys.stderr)
        warm_s, warm_digest, warm_runner = _timed_run(
            bundle, RuntimeConfig(jobs=1, cache_dir=cache_dir))

        digests = {serial_digest, parallel_digest, cold_digest,
                   warm_digest, dist_digest}
        if len(digests) != 1:
            raise AssertionError(
                "execution modes disagree on results: %r" % (digests,))
        if warm_runner.report.computed_stages:
            raise AssertionError(
                "warm run recomputed stages: %r"
                % (warm_runner.report.computed_stages,))

        oversubscribed = cpu_count < args.jobs
        # Throughput normalizes wall time by input size (probes plus
        # connection-log entries), making runs at different --scale
        # comparable where raw seconds are not.
        records = len(world.archive) + world.connlog.entry_count()
        if parallel_s is None:
            parallel_entry = {"seconds": None,
                              "skipped": "oversubscribed (cpu_count=1)"}
        else:
            # On an oversubscribed host this wall time measures
            # time-slicing, not parallelism; the tag travels with the
            # raw number so downstream readers cannot mistake one for
            # the other.
            parallel_entry = {"seconds": round(parallel_s, 3),
                              "oversubscribed": oversubscribed}
        payload = {
            "scenario": {"scale": args.scale, "seed": args.seed,
                         "probes": len(world.archive),
                         "connlog_entries": world.connlog.entry_count(),
                         "fingerprint": bundle.fingerprint},
            "machine": {"python": platform.python_version(),
                        "platform": platform.platform(),
                        "cpu_count": os.cpu_count()},
            "code_version": code_version(),
            "results_digest": serial_digest,
            "jobs": args.jobs,
            "seconds": {"serial": round(serial_s, 3),
                        "parallel": parallel_entry,
                        "cold_cache": round(cold_s, 3),
                        "warm_cache": round(warm_s, 3)},
            "distributed": {
                "mode": "loopback",
                "workers": 2,
                "seconds": round(dist_s, 3),
                "records_per_sec": round(records / dist_s, 1),
                "leases_served": sum(
                    summary.leases_served
                    for summary in dist_run_result.summaries.values()),
                "digest_matches_serial": dist_digest == serial_digest},
            "records_per_sec": {
                "records": records,
                "serial": round(records / serial_s, 1),
                "warm_cache": round(records / warm_s, 1)},
            "speedup_vs_serial": {
                # An oversubscribed "speedup" only measures time-slicing
                # overhead; publish null rather than a misleading number.
                "parallel": (None if parallel_s is None or oversubscribed
                             else round(serial_s / parallel_s, 2)),
                "warm_cache": round(serial_s / warm_s, 2)},
            "metrics": obs.metrics_snapshot(),
        }
        if parallel_s is None:
            payload["notes"] = (
                "seconds.parallel skipped: cpu_count=1, so worker "
                "processes would time-slice a single core and the wall "
                "time would measure fork/IPC overhead, not parallelism")
        elif oversubscribed:
            payload["notes"] = (
                "speedup_vs_serial.parallel is null: jobs=%d exceeds "
                "cpu_count=%d, so worker processes time-slice a single "
                "core and the ratio would measure fork/IPC overhead, "
                "not parallelism" % (args.jobs, cpu_count))

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["seconds"]), file=sys.stderr)
    parallel_x = payload["speedup_vs_serial"]["parallel"]
    print("wrote %s (parallel %s, warm cache %.2fx vs serial, "
          "distributed %.3fs loopback x2)"
          % (args.out,
             "n/a (oversubscribed)" if parallel_x is None
             else "%.2fx" % parallel_x,
             payload["speedup_vs_serial"]["warm_cache"],
             payload["distributed"]["seconds"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
