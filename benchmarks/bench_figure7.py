"""Figure 7: CDF of P(address change | network outage) per AS.

The PPP ASes (Orange, DTAG, BT) renumber on most network outages — around
half their probes on every one — while LGI and Verizon probes rarely do.
"""

from repro.core.report import render_probability_cdfs
from repro.experiments import scenarios
from repro.util.stats import cdf_fraction_at


def test_figure7_network_outage_cdfs(results, benchmark):
    def build():
        return {results.as_names[asn]: results.figure7_cdf(asn)
                for asn in scenarios.TOP_FIVE}

    series = benchmark.pedantic(build, rounds=3, iterations=1)
    print("\n" + render_probability_cdfs(series, title="Figure 7"))

    for name in ("Orange", "DTAG", "BT"):
        points = series[name]
        assert points, "%s has no qualifying probes" % name
        # Most probes have high P(ac|nw): little mass below 0.6.
        assert cdf_fraction_at(points, 0.6) < 0.45, name
        # A large share sits exactly at 1.0 (paper: ~half for Orange/DTAG).
        assert 1.0 - cdf_fraction_at(points, 0.99) > 0.3, name

    for name in ("LGI", "Verizon"):
        points = series[name]
        assert points, "%s has no qualifying probes" % name
        # Most probes renumber on few or no network outages.
        assert cdf_fraction_at(points, 0.4) > 0.6, name
