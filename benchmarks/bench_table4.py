"""Table 4: SOS-uptime sample and reboot inference.

Uses the paper's literal Table 4 counter values and checks the inferred
reboot instant matches the paper's 17:50:36.
"""

from repro.experiments.tables import table4
from repro.util import timeutil


def test_table4_uptime_reboot_inference(benchmark):
    output = benchmark.pedantic(table4, rounds=10, iterations=1)
    print("\n" + output.text)

    assert output.data["reboots"] == 1
    assert output.data["reboot_time"] == timeutil.epoch(
        2015, 1, 1, 17, 50, 36)
