"""Figure 1: total-time-fraction CDF by continent.

Times the geographic aggregation and checks the paper's shape: Europe,
Asia, Africa and South America show modes at multiples of 24 h; North
America and Oceania are mode-free with most time in multi-week durations.
"""

from repro.core.report import render_group_durations
from repro.util.stats import cdf_fraction_at, cdf_mass_at
from repro.util.timeutil import DAY, HOUR


def test_figure1_continent_durations(results, benchmark):
    groups = benchmark.pedantic(results.figure1_groups, rounds=3,
                                iterations=1)
    print("\n" + render_group_durations(groups, title="Figure 1"))

    by_label = {group.label: group for group in groups}
    assert {"EU", "NA", "AS", "AF", "SA", "OC"} <= set(by_label)

    # Europe contributes by far the most address time (paper: 784 years
    # against 127 for North America).
    assert by_label["EU"].total_years == max(g.total_years for g in groups)

    # 24-hour modes on the periodic continents.
    for continent in ("EU", "AS", "AF"):
        cdf = by_label[continent].cdf()
        assert cdf_mass_at(cdf, 24 * HOUR) > 0.04, continent

    # South America's multi-mode structure: 12 h and 28 h modes exist.
    sa = by_label["SA"].cdf()
    assert cdf_mass_at(sa, 12 * HOUR) > 0.03
    assert cdf_mass_at(sa, 28 * HOUR) > 0.03

    # North America and Oceania: no 24 h mode, long-lived addresses.
    for continent in ("NA", "OC"):
        cdf = by_label[continent].cdf()
        assert cdf_mass_at(cdf, 24 * HOUR) < 0.04, continent
        # More than half the time in durations beyond 50 days.
        assert cdf_fraction_at(cdf, 50 * DAY) < 0.5, continent
