"""Table 2: probe filtering summary.

Times the full filtering stage over the shared world and checks the
population proportions track the paper's Table 2: dual-stack is the
largest filtered class, IPv6/tags/testing are small, and the AS-level
population is the analyzable population minus the multi-AS probes.
"""

from repro.core.filtering import ProbeFilter
from repro.core.report import render_table2


def test_table2_probe_filtering(world, benchmark):
    def run_filter():
        return ProbeFilter(world.connlog, world.archive, world.ip2as).run()

    report = benchmark.pedantic(run_filter, rounds=1, iterations=1)
    rows = dict(report.table2_rows())
    print("\n" + render_table2(list(rows.items())))

    total = rows["Total Probes"]
    assert total > 0
    # Paper ratios: dual stack 34%, never changed 28%, IPv6 2.2%,
    # tags 1.6%, behavioural multihoming 4.7%, testing 2.0%.
    assert 0.25 < rows["Dual Stack"] / total < 0.45
    assert 0.20 < rows["Never changed"] / total < 0.50
    assert rows["IPv6"] / total < 0.05
    assert rows["Multihomed / Core / Data-center (tags)"] / total < 0.04
    assert 0.02 < rows["Multihomed (alternating addresses)"] / total < 0.08
    assert rows["Only address change from 193.0.0.78"] / total < 0.04
    # Structural identities of the table.
    assert (rows["Analyzable (geography)"] - rows["Multiple ASes"]
            == rows["Analyzable (AS-level)"])
    assert rows["Analyzable (AS-level)"] > 0.1 * total
