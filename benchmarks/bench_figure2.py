"""Figure 2: duration CDFs for the ASes with the most probes.

Checks the paper's contrast: Orange spends over half its time in exactly
one-week durations, DTAG in 24-hour durations, BT shows a two-week mode,
while LGI and Verizon have no mode at all and long-lived addresses.
"""

from repro.core.report import render_group_durations
from repro.experiments import scenarios
from repro.util.stats import cdf_fraction_at, cdf_mass_at
from repro.util.timeutil import DAY, HOUR


def test_figure2_top_as_durations(results, benchmark):
    def build():
        return {asn: results.as_group_durations(asn)
                for asn in scenarios.TOP_FIVE}

    groups = benchmark.pedantic(build, rounds=3, iterations=1)
    print("\n" + render_group_durations(list(groups.values()),
                                        title="Figure 2"))

    orange = groups[scenarios.ORANGE].cdf()
    assert cdf_mass_at(orange, 168 * HOUR) > 0.4  # paper: 55%

    dtag = groups[scenarios.DTAG].cdf()
    assert cdf_mass_at(dtag, 24 * HOUR) > 0.5     # paper: 76%

    bt = groups[scenarios.BT].cdf()
    two_week_mass = (cdf_mass_at(bt, 336 * HOUR)
                     + cdf_mass_at(bt, 337 * HOUR))
    assert two_week_mass > 0.05                   # paper: 13%

    # LGI and Verizon: no periodic mode, most time in long durations.
    for asn in (scenarios.LGI, scenarios.VERIZON):
        cdf = groups[asn].cdf()
        assert cdf_mass_at(cdf, 24 * HOUR) < 0.1, asn
        assert cdf_fraction_at(cdf, 7 * DAY) < 0.5, asn
