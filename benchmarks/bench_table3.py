"""Table 3: k-root ping sample and network-outage detection.

Times the detection of an injected ~20-minute network outage and checks
the detected window matches the paper's semantics (first to last all-lost
round, LTS growing).
"""

from repro.experiments.tables import table3


def test_table3_kroot_outage_detection(benchmark):
    output = benchmark.pedantic(table3, rounds=10, iterations=1)
    print("\n" + output.text)

    assert output.data["detected"] == 1
    # The injected outage spans 1200 s; tick-based detection reports the
    # lost-round window, underestimating by up to two rounds.
    assert 700 <= output.data["detected_duration"] <= 1200
