"""Table 6: ASes whose probes renumber upon outages.

Times the conditional-probability table and checks the paper's findings:
the qualifying ASes are European PPP deployments (Orange, DTAG, Telecom
Italia, ...), and the power-outage columns run below the network columns
because power detection has false positives.
"""

from repro.core.report import render_table6
from repro.experiments import scenarios


def test_table6_outage_renumbering(results, benchmark):
    rows = benchmark.pedantic(results.table6_rows, rounds=3, iterations=1)
    print("\n" + render_table6(rows))

    assert rows, "no AS qualified - outage association is broken"
    by_asn = {row.asn: row for row in rows}
    assert scenarios.ORANGE in by_asn

    # Every listed AS renumbers on most outages by construction of the
    # qualification rule, and power-outage behaviour agrees broadly with
    # network-outage behaviour (the paper's second observation).
    for row in rows:
        assert row.pct_network_over_80 >= 0.4
        assert row.pct_power_over_80 >= 0.3
    # In aggregate P(ac|pw)=1 runs below P(ac|nw)=1 because power-outage
    # detection has false positives (Section 5.1); individual ASes can
    # deviate (the paper's ISKON does too).
    mean_nw_eq1 = sum(r.pct_network_eq_1 for r in rows) / len(rows)
    mean_pw_eq1 = sum(r.pct_power_eq_1 for r in rows) / len(rows)
    assert mean_pw_eq1 <= mean_nw_eq1 + 0.05

    # The stable DHCP ISPs never qualify.
    assert scenarios.LGI not in by_asn
    assert scenarios.VERIZON not in by_asn
    assert scenarios.COMCAST not in by_asn
