"""Shared fixtures for the benchmark suite.

The paper scenario is simulated once per pytest session (the expensive
part) and every per-table/figure benchmark times its *analysis* stage over
those shared datasets, then prints rows comparable to the paper and
asserts the qualitative shape the paper reports.

Set ``REPRO_BENCH_SCALE`` to trade fidelity for speed (default 0.5).
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import pipeline_for_world
from repro.experiments.scenarios import paper_results, paper_world


def bench_scale() -> float:
    """Scenario scale for benchmarks, from the environment.

    Fails fast with an actionable message when ``REPRO_BENCH_SCALE`` is
    unparsable or non-positive, instead of surfacing a bare
    ``ValueError`` from deep inside a session fixture.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.5")
    try:
        scale = float(raw)
    except ValueError:
        raise pytest.UsageError(
            "REPRO_BENCH_SCALE=%r is not a number; set it to a positive "
            "scenario scale factor such as 0.5" % raw) from None
    if scale <= 0:
        raise pytest.UsageError(
            "REPRO_BENCH_SCALE=%r must be positive; the scale multiplies "
            "the paper scenario's probe populations" % raw)
    return scale


@pytest.fixture(scope="session")
def world():
    """The simulated 2015 world (built once)."""
    return paper_world(scale=bench_scale())


@pytest.fixture(scope="session")
def results(world):
    """Full pipeline results over the shared world (run once)."""
    return paper_results(scale=bench_scale())


@pytest.fixture(scope="session")
def pipeline(world):
    """A fresh pipeline instance for benchmarks that time full stages."""
    return pipeline_for_world(world)
