"""Shared fixtures for the benchmark suite.

The paper scenario is simulated once per pytest session (the expensive
part) and every per-table/figure benchmark times its *analysis* stage over
those shared datasets, then prints rows comparable to the paper and
asserts the qualitative shape the paper reports.

Set ``REPRO_BENCH_SCALE`` to trade fidelity for speed (default 0.5).
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import pipeline_for_world
from repro.experiments.scenarios import paper_results, paper_world


def bench_scale() -> float:
    """Scenario scale for benchmarks, from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def world():
    """The simulated 2015 world (built once)."""
    return paper_world(scale=bench_scale())


@pytest.fixture(scope="session")
def results(world):
    """Full pipeline results over the shared world (run once)."""
    return paper_results(scale=bench_scale())


@pytest.fixture(scope="session")
def pipeline(world):
    """A fresh pipeline instance for benchmarks that time full stages."""
    return pipeline_for_world(world)
