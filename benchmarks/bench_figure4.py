"""Figure 4: Orange's periodic changes by hour of day.

Orange's fleet free-runs, so weekly renumberings spread over the whole
day rather than concentrating in a night window.
"""

from repro.core.report import render_hour_histogram
from repro.experiments import scenarios
from repro.util.timeutil import HOUR


def test_figure4_orange_hours(results, benchmark):
    counts = benchmark.pedantic(
        lambda: results.figure45_histogram(scenarios.ORANGE, 168 * HOUR),
        rounds=3, iterations=1)
    print("\n" + render_hour_histogram(counts, title="Figure 4: Orange"))

    total = sum(counts)
    assert total > 100
    # No strong night concentration: the 0-6 GMT window holds roughly its
    # proportional quarter of changes, far from DTAG's three quarters.
    night = sum(counts[0:6]) / total
    assert night < 0.5
    # Every hour of the day sees changes.
    assert all(count > 0 for count in counts)
