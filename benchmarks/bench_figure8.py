"""Figure 8: CDF of P(address change | power outage) per AS, v3 probes.

Same AS-level contrast as Figure 7 for power outages, with the power
probabilities slightly depressed by false-positive probe-only reboots.
"""

from repro.core.report import render_probability_cdfs
from repro.experiments import scenarios
from repro.util.stats import cdf_fraction_at


def test_figure8_power_outage_cdfs(results, benchmark):
    def build():
        return {results.as_names[asn]: results.figure8_cdf(asn)
                for asn in scenarios.TOP_FIVE}

    series = benchmark.pedantic(build, rounds=3, iterations=1)
    print("\n" + render_probability_cdfs(series, title="Figure 8"))

    for name in ("Orange", "DTAG"):
        points = series[name]
        assert points, "%s has no qualifying probes" % name
        # Probes mostly renumber on power outages.
        assert cdf_fraction_at(points, 0.5) < 0.5, name

    for name in ("LGI", "Verizon"):
        points = series[name]
        if not points:
            continue  # few v3 probes with 3+ power outages at small scale
        assert cdf_fraction_at(points, 0.4) > 0.6, name
